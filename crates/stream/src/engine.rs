//! The streaming engine: source → projector → triangle tracker → alerts,
//! with periodic CI-graph checkpoints.
//!
//! [`StreamEngine`] is the assembled pipeline. It interns raw
//! [`CommentRecord`]s into the dense id space, feeds the projector, routes
//! every edge delta through the triangle tracker, evaluates alerts on the
//! affected triplets, and — every `checkpoint_every` events — records a
//! [`Checkpoint`] with summary statistics. [`StreamEngine::snapshot`]
//! materialises the live CI graph at any moment, in exactly the form the
//! batch `analysis` / hypergraph-validation tooling consumes.

use std::collections::HashMap;

use coordination_core::cigraph::CiGraph;
use coordination_core::ids::{Interner, Timestamp};
use coordination_core::records::CommentRecord;
use coordination_core::window::Window;

use crate::alert::{Alert, Alerter};
use crate::projector::StreamProjector;
use crate::triangles::{TriangleTracker, Triple};

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Projection delay window `(δ1, δ2)`.
    pub window: Window,
    /// Min edge weight for a triplet to survive (the paper's `w' ≥ 25` for
    /// January 2020; scale it down with scaled-down scenarios).
    pub min_triangle_weight: u64,
    /// T-score floor for alerting (0.0 = alert on survival alone).
    pub min_t_score: f64,
    /// Retention horizon in seconds (`None` = cumulative, batch-equivalent).
    pub horizon: Option<i64>,
    /// Record a [`Checkpoint`] every this many events (`None` = only on
    /// demand).
    pub checkpoint_every: Option<u64>,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: Window::zero_to_60s(),
            min_triangle_weight: 25,
            min_t_score: 0.0,
            horizon: None,
            checkpoint_every: None,
        }
    }
}

/// Summary statistics recorded every `checkpoint_every` events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// Events ingested when the checkpoint was taken.
    pub events: u64,
    /// Stream time at the checkpoint.
    pub ts: Timestamp,
    /// Live CI-graph edges.
    pub n_edges: u64,
    /// Live surviving triangles.
    pub live_triangles: u64,
    /// Alerts fired so far.
    pub alerts: u64,
}

/// The assembled streaming pipeline.
#[derive(Debug)]
pub struct StreamEngine {
    config: StreamConfig,
    authors: Interner,
    pages: Interner,
    projector: StreamProjector,
    tracker: TriangleTracker,
    alerter: Alerter,
    events: u64,
    alerts_fired: u64,
    checkpoints: Vec<Checkpoint>,
    alert_scratch: Vec<Alert>,
    // Counter handles held across the engine's lifetime: `ingest` runs per
    // event, so registry name lookups there would dominate the no-op cost.
    c_events: obs::Counter,
    c_alerts: obs::Counter,
    c_edge_additions: obs::Counter,
    c_edge_expirations: obs::Counter,
    c_checkpoints: obs::Counter,
}

impl StreamEngine {
    /// Build an engine from a configuration.
    pub fn new(config: StreamConfig) -> Self {
        StreamEngine {
            projector: StreamProjector::with_horizon(config.window, config.horizon),
            tracker: TriangleTracker::new(config.min_triangle_weight.max(1)),
            alerter: Alerter::new(config.min_t_score),
            config,
            authors: Interner::new(),
            pages: Interner::new(),
            events: 0,
            alerts_fired: 0,
            checkpoints: Vec::new(),
            alert_scratch: Vec::new(),
            c_events: obs::counter("stream.events"),
            c_alerts: obs::counter("stream.alerts"),
            c_edge_additions: obs::counter("stream.edge_additions"),
            c_edge_expirations: obs::counter("stream.edge_expirations"),
            c_checkpoints: obs::counter("stream.checkpoints"),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// Events ingested so far.
    pub fn events_ingested(&self) -> u64 {
        self.events
    }

    /// The author interner (id ↔ account name).
    pub fn authors(&self) -> &Interner {
        &self.authors
    }

    /// The page interner (id ↔ link id).
    pub fn pages(&self) -> &Interner {
        &self.pages
    }

    /// The projector (live edge weights and `P'`).
    pub fn projector(&self) -> &StreamProjector {
        &self.projector
    }

    /// The triangle tracker (live surviving triplets).
    pub fn tracker(&self) -> &TriangleTracker {
        &self.tracker
    }

    /// Checkpoints recorded so far.
    pub fn checkpoints(&self) -> &[Checkpoint] {
        &self.checkpoints
    }

    /// Total alerts fired.
    pub fn alerts_fired(&self) -> u64 {
        self.alerts_fired
    }

    /// Ingest one record; returns the alerts it fired (usually empty). The
    /// slice is valid until the next `ingest` call.
    pub fn ingest(&mut self, record: &CommentRecord) -> &[Alert] {
        let author = self.authors.intern(&record.author);
        let page = self.pages.intern(&record.link_id);
        let ts = record.created_utc;
        self.events += 1;

        self.alert_scratch.clear();
        let deltas = self.projector.ingest(author, page, ts).to_vec();
        let mut added = 0u64;
        let mut expired = 0u64;
        for d in &deltas {
            if d.delta > 0 {
                added += 1;
            } else {
                expired += 1;
            }
            let ev = self.tracker.apply(d);
            self.alerter.evaluate(
                &ev,
                &self.tracker,
                self.projector.page_counts(),
                ts,
                self.events,
                &mut self.alert_scratch,
            );
        }
        self.alerts_fired += self.alert_scratch.len() as u64;
        self.c_events.inc();
        self.c_edge_additions.add(added);
        self.c_edge_expirations.add(expired);
        self.c_alerts.add(self.alert_scratch.len() as u64);

        if let Some(every) = self.config.checkpoint_every {
            if every > 0 && self.events.is_multiple_of(every) {
                self.record_checkpoint(ts);
            }
        }
        &self.alert_scratch
    }

    /// Drive an entire source through the engine, invoking `on_alert` for
    /// each alert as it fires. Returns the total number of alerts.
    pub fn run<I, F>(&mut self, source: I, mut on_alert: F) -> u64
    where
        I: IntoIterator<Item = CommentRecord>,
        F: FnMut(&StreamEngine, &Alert),
    {
        let mut fired = 0u64;
        for record in source {
            let alerts = self.ingest(&record).to_vec();
            fired += alerts.len() as u64;
            for a in &alerts {
                on_alert(self, a);
            }
        }
        fired
    }

    /// Take a checkpoint now (also called automatically on the configured
    /// interval).
    pub fn record_checkpoint(&mut self, ts: Timestamp) {
        let n_edges = self.projector.n_edges() as u64;
        let live_triangles = self.tracker.len() as u64;
        self.c_checkpoints.inc();
        obs::gauge("stream.live_edges").set(n_edges);
        obs::gauge("stream.live_triangles").set(live_triangles);
        obs::record_stage_rss("stream");
        self.checkpoints.push(Checkpoint {
            events: self.events,
            ts,
            n_edges,
            live_triangles,
            alerts: self.alerts_fired,
        });
    }

    /// Materialise the live CI graph over every author seen so far — the
    /// same structure `coordination_core::project` produces, ready for the
    /// batch survey/validation/analysis tooling.
    pub fn snapshot(&self) -> CiGraph {
        self.projector.snapshot(self.authors.len() as u32)
    }

    /// The live surviving triplets with their min weights and T-scores,
    /// heaviest first — a streaming stand-in for the batch survey report.
    pub fn live_survivors(&self) -> Vec<(Triple, u64, f64)> {
        let p = self.projector.page_counts();
        let pc = |x: u32| p.get(x as usize).copied().unwrap_or(0);
        let mut out: Vec<(Triple, u64, f64)> = self
            .tracker
            .iter()
            .map(|t| {
                let mw = self.tracker.min_weight(t).unwrap_or(0);
                let score = tripoll::survey::t_score(mw, pc(t[0]), pc(t[1]), pc(t[2]));
                (t, mw, score)
            })
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Triplets that have alerted so far, in canonical id order.
    pub fn fired_triplets(&self) -> Vec<Triple> {
        let mut v: Vec<Triple> = self.alerter.fired().iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Map a triple of author ids to account names.
    pub fn author_names(&self, t: Triple) -> [&str; 3] {
        [
            self.authors.name(t[0]),
            self.authors.name(t[1]),
            self.authors.name(t[2]),
        ]
    }

    /// Per-edge weights of the live graph keyed by author names — convenient
    /// for debugging and small demos.
    pub fn named_edges(&self) -> HashMap<(String, String), u64> {
        self.projector
            .edges()
            .map(|(x, y, w)| {
                (
                    (
                        self.authors.name(x).to_string(),
                        self.authors.name(y).to_string(),
                    ),
                    w,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trio_records(pages: usize) -> Vec<CommentRecord> {
        let mut out = Vec::new();
        for p in 0..pages {
            for (i, who) in ["a", "b", "c"].iter().enumerate() {
                out.push(CommentRecord::new(
                    *who,
                    format!("t3_{p}"),
                    (p * 1000 + i * 10) as i64,
                ));
            }
        }
        out
    }

    #[test]
    fn alert_fires_exactly_when_weight_cutoff_is_reached() {
        let mut engine = StreamEngine::new(StreamConfig {
            window: Window::new(0, 60),
            min_triangle_weight: 3,
            ..Default::default()
        });
        let records = trio_records(5);
        let mut fired_at = None;
        for (i, r) in records.iter().enumerate() {
            if !engine.ingest(r).is_empty() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        // The third shared page completes at record index 8 (0-based): pages
        // 0,1 lift each edge to 2, page 2's third comment closes weight 3.
        assert_eq!(fired_at, Some(8));
        assert_eq!(engine.alerts_fired(), 1);
        let survivors = engine.live_survivors();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].1, 5); // all five pages counted by the end
    }

    #[test]
    fn snapshot_is_analysis_ready() {
        let mut engine = StreamEngine::new(StreamConfig {
            window: Window::new(0, 60),
            min_triangle_weight: 2,
            ..Default::default()
        });
        for r in trio_records(3) {
            engine.ingest(&r);
        }
        let snap = engine.snapshot();
        assert_eq!(snap.n_authors(), 3);
        assert_eq!(snap.n_edges(), 3);
        let a = engine.authors().get("a").unwrap();
        let b = engine.authors().get("b").unwrap();
        assert_eq!(
            snap.weight(
                coordination_core::ids::AuthorId(a),
                coordination_core::ids::AuthorId(b)
            ),
            3
        );
        // thresholded components find the trio
        let comps = snap.components(2);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 3);
    }

    #[test]
    fn checkpoints_record_on_interval() {
        let mut engine = StreamEngine::new(StreamConfig {
            window: Window::new(0, 60),
            min_triangle_weight: 2,
            checkpoint_every: Some(4),
            ..Default::default()
        });
        for r in trio_records(4) {
            engine.ingest(&r);
        }
        // 12 events / every 4 = 3 checkpoints
        let cps = engine.checkpoints();
        assert_eq!(cps.len(), 3);
        assert_eq!(cps[0].events, 4);
        assert_eq!(cps[2].events, 12);
        assert!(cps[2].alerts >= 1);
        assert!(cps.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn run_drives_a_source_end_to_end() {
        let mut engine = StreamEngine::new(StreamConfig {
            window: Window::new(0, 60),
            min_triangle_weight: 2,
            ..Default::default()
        });
        let mut seen = Vec::new();
        let fired = engine.run(trio_records(4), |eng, alert| {
            seen.push((
                alert.events_ingested,
                eng.author_names(alert.authors).map(String::from),
            ));
        });
        assert_eq!(fired, 1);
        assert_eq!(seen.len(), 1);
        let names = &seen[0].1;
        assert_eq!(names, &["a".to_string(), "b".to_string(), "c".to_string()]);
    }

    #[test]
    fn sliding_mode_forgets_old_coordination() {
        let mut engine = StreamEngine::new(StreamConfig {
            window: Window::new(0, 60),
            min_triangle_weight: 2,
            horizon: Some(3600),
            ..Default::default()
        });
        for r in trio_records(3) {
            engine.ingest(&r);
        }
        assert_eq!(engine.tracker().len(), 1);
        // a lone unrelated comment far in the future expires everything
        engine.ingest(&CommentRecord::new("zz", "t3_zz", 1_000_000));
        assert_eq!(engine.tracker().len(), 0);
        assert_eq!(engine.projector().n_edges(), 0);
        let snap = engine.snapshot();
        assert_eq!(snap.n_edges(), 0);
        assert!(snap.page_counts().iter().all(|&c| c == 0));
    }
}
