//! Alerting: fire once per triplet when its score crosses the cutoff.
//!
//! A triplet alerts the first time it (a) survives the min-weight cutoff
//! (all three edges at `w' ≥ cutoff` — the condition that creates it in the
//! [`TriangleTracker`]) and (b) carries a T-score at or above the configured
//! floor. The T-score is the paper's Eq. 7, computed from the *live* `P'`
//! counts at the moment of evaluation, so an alert carries the score the
//! batch pipeline would have reported had it stopped the stream right there.
//!
//! Triplets whose T-score is initially too low are re-evaluated whenever one
//! of their edges changes weight (a `touched`/`created` event from the
//! tracker). Pure `P'` drift without an edge delta is *not* re-evaluated: in
//! cumulative mode `P'` only grows, which can only lower T, and in sliding
//! mode the next interaction or expiry on any clique edge re-triggers the
//! check. Each triplet fires at most once per engine lifetime.

use std::collections::HashSet;

use coordination_core::ids::Timestamp;
use tripoll::survey::t_score;

use crate::triangles::{TriangleEvents, TriangleTracker, Triple};

/// A coordinated-triplet detection, emitted mid-stream.
#[derive(Clone, Debug, PartialEq)]
pub struct Alert {
    /// The author triple, `authors[0] < authors[1] < authors[2]`.
    pub authors: Triple,
    /// Minimum edge weight of the triplet when it fired.
    pub min_weight: u64,
    /// T-score (Eq. 7) at firing time.
    pub t_score: f64,
    /// Stream time (event timestamp) at which the alert fired.
    pub ts: Timestamp,
    /// Events ingested before (and including) the triggering one — the
    /// detection-latency measure used in EXPERIMENTS.md.
    pub events_ingested: u64,
}

/// Once-per-triplet alert gate over tracker events.
#[derive(Debug)]
pub struct Alerter {
    min_t_score: f64,
    fired: HashSet<Triple>,
}

impl Alerter {
    /// Alert on triplets with T-score ≥ `min_t_score` (0.0 alerts on every
    /// triplet that survives the weight cutoff).
    pub fn new(min_t_score: f64) -> Self {
        assert!(min_t_score >= 0.0, "T-score floor must be non-negative");
        Alerter {
            min_t_score,
            fired: HashSet::new(),
        }
    }

    /// The configured T-score floor.
    pub fn min_t_score(&self) -> f64 {
        self.min_t_score
    }

    /// Triplets that have fired so far.
    pub fn fired(&self) -> &HashSet<Triple> {
        &self.fired
    }

    /// Evaluate the triplets affected by one applied delta, appending any
    /// new alerts to `out`. `page_counts` is the projector's live `P'`.
    pub fn evaluate(
        &mut self,
        events: &TriangleEvents,
        tracker: &TriangleTracker,
        page_counts: &[u64],
        ts: Timestamp,
        events_ingested: u64,
        out: &mut Vec<Alert>,
    ) {
        for &t in events.created.iter().chain(events.touched.iter()) {
            if self.fired.contains(&t) {
                continue;
            }
            let Some(min_weight) = tracker.min_weight(t) else {
                continue; // destroyed later in the same batch of deltas
            };
            let p = |x: u32| page_counts.get(x as usize).copied().unwrap_or(0);
            let score = t_score(min_weight, p(t[0]), p(t[1]), p(t[2]));
            if score >= self.min_t_score {
                self.fired.insert(t);
                out.push(Alert {
                    authors: t,
                    min_weight,
                    t_score: score,
                    ts,
                    events_ingested,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::projector::EdgeDelta;

    fn tracker_with_triangle(w: u64) -> (TriangleTracker, TriangleEvents) {
        let mut t = TriangleTracker::new(w);
        let mut last = TriangleEvents::default();
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
            for step in 1..=w {
                last = t.apply(&EdgeDelta {
                    x,
                    y,
                    new_weight: step,
                    delta: 1,
                });
            }
        }
        (t, last)
    }

    #[test]
    fn fires_once_with_live_score() {
        let (tracker, ev) = tracker_with_triangle(2);
        let mut alerter = Alerter::new(0.0);
        let mut out = Vec::new();
        // P' = [3, 3, 3] → T = 3·2/9
        alerter.evaluate(&ev, &tracker, &[3, 3, 3], 42, 7, &mut out);
        assert_eq!(out.len(), 1);
        let a = &out[0];
        assert_eq!(a.authors, [0, 1, 2]);
        assert_eq!(a.min_weight, 2);
        assert!((a.t_score - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!((a.ts, a.events_ingested), (42, 7));
        // same events again: the gate holds
        alerter.evaluate(&ev, &tracker, &[3, 3, 3], 43, 8, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn t_score_floor_defers_until_weight_catches_up() {
        let (mut tracker, ev) = tracker_with_triangle(2);
        // floor 0.5: T = 6/18 = 0.333 at P' = [6,6,6] → no alert yet
        let mut alerter = Alerter::new(0.5);
        let mut out = Vec::new();
        alerter.evaluate(&ev, &tracker, &[6, 6, 6], 10, 1, &mut out);
        assert!(out.is_empty());
        // weight rises to 3 on every edge → T = 9/18 = 0.5 → fires
        for (x, y) in [(0u32, 1u32), (1, 2), (0, 2)] {
            let ev = tracker.apply(&EdgeDelta {
                x,
                y,
                new_weight: 3,
                delta: 1,
            });
            alerter.evaluate(&ev, &tracker, &[6, 6, 6], 11, 2, &mut out);
        }
        assert_eq!(out.len(), 1);
        assert!((out[0].t_score - 0.5).abs() < 1e-12);
    }
}
