//! Sliding-window incremental projection of the CI graph.
//!
//! The batch projector (`coordination_core::project`) scans each page's
//! sorted comment list once and dedups author pairs into a set. This module
//! computes the same `w'` / `P'` quantities *online*: comments arrive in
//! timestamp order, each arrival pairs backwards against a per-page buffer of
//! recent comments, and every change to an edge weight is surfaced as an
//! [`EdgeDelta`] so downstream structures (the triangle tracker) can update
//! without rescanning the graph.
//!
//! Two operating modes:
//!
//! * **Cumulative** (`horizon = None`): page contributions never expire.
//!   After ingesting an entire event log, [`StreamProjector::snapshot`] is
//!   *bit-identical* to the batch projection of the same events — the
//!   equivalence test in the workspace root pins this.
//! * **Sliding** (`horizon = Some(h)`): a page's contribution to `w'_{xy}`
//!   expires once stream time moves more than `h` seconds past the pair's
//!   most recent qualifying interaction on that page, emitting a −1 delta.
//!   `P'` shrinks in step via per-(page, author) refcounts. This is the
//!   "live" mode: old coordination decays instead of accumulating forever.
//!
//! Events must arrive with non-decreasing timestamps (ties allowed in any
//! order — pair keys are unordered, so arrival order within a timestamp does
//! not change the result). Replaying a real out-of-order firehose requires a
//! reorder buffer in front of the projector; the [`crate::source`] replays
//! sort up front.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use coordination_core::btm::Btm;
use coordination_core::cigraph::CiGraph;
use coordination_core::ids::Timestamp;
use coordination_core::project::{page_pairs_flat, unpack_pair};
use coordination_core::window::Window;

/// An unordered author pair, stored as `(min, max)`.
type Pair = (u32, u32);

/// A ±1 change to one CI-graph edge weight, emitted by
/// [`StreamProjector::ingest`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Smaller endpoint author id.
    pub x: u32,
    /// Larger endpoint author id.
    pub y: u32,
    /// The edge's weight *after* applying this delta (0 means the edge just
    /// vanished).
    pub new_weight: u64,
    /// +1 (a page began supporting the pair) or −1 (a page contribution
    /// expired).
    pub delta: i8,
}

impl EdgeDelta {
    /// The unordered pair key.
    #[inline]
    pub fn pair(&self) -> Pair {
        (self.x, self.y)
    }
}

/// Incremental windowed projector: BTM events in, CI-graph edge deltas out.
///
/// State per page: a time-ordered buffer of the comments still within `δ2`
/// of the page's newest comment (older ones can never pair with a future
/// arrival, so they are pruned on each arrival). State per (page, pair): the
/// timestamp of the most recent qualifying interaction, whose presence means
/// the page currently contributes +1 to `w'` for that pair. `P'_x` is
/// maintained through a per-(page, author) count of supported pairs incident
/// to `x` — the page counts toward `P'_x` exactly while that count is > 0.
#[derive(Debug)]
pub struct StreamProjector {
    window: Window,
    horizon: Option<i64>,
    /// Stream clock: max timestamp ingested so far.
    now: Timestamp,
    started: bool,
    /// 1 + max author id seen.
    n_authors: u32,
    /// Per-page recent comments, time-ordered (oldest front).
    buffers: HashMap<u32, VecDeque<(Timestamp, u32)>>,
    /// (page, pair) → timestamp of the latest qualifying interaction.
    /// Presence ⇔ the page currently supports the pair.
    support: HashMap<(u32, Pair), Timestamp>,
    /// Live edge weights `w'` (number of supporting pages per pair).
    edges: HashMap<Pair, u64>,
    /// (page, author) → number of supported pairs on `page` incident to
    /// `author`; transitions 0↔1 move `P'`.
    incident: HashMap<(u32, u32), u32>,
    /// Dense `P'` indexed by author id (grows as authors appear).
    page_counts: Vec<u64>,
    /// Lazy expiry queue: (candidate expiry time, page, pair). Entries are
    /// validated against `support` when popped, so refreshed pairs cost one
    /// stale pop instead of a decrease-key.
    expiry: BinaryHeap<Reverse<(Timestamp, u32, Pair)>>,
    /// Deltas scratch, drained into the caller's sink each ingest.
    scratch: Vec<EdgeDelta>,
}

impl StreamProjector {
    /// A cumulative projector (no expiry) — exact batch equivalence at close.
    pub fn new(window: Window) -> Self {
        Self::with_horizon(window, None)
    }

    /// A projector whose page contributions expire `horizon` seconds after
    /// the pair's last qualifying interaction on the page. `horizon` must be
    /// ≥ `δ2` when present: a shorter horizon would expire a contribution
    /// while comments that refresh it are still arriving.
    pub fn with_horizon(window: Window, horizon: Option<i64>) -> Self {
        if let Some(h) = horizon {
            assert!(
                h >= window.d2(),
                "retention horizon ({h}s) must cover the projection window (δ2 = {}s)",
                window.d2()
            );
        }
        StreamProjector {
            window,
            horizon,
            now: Timestamp::MIN,
            started: false,
            n_authors: 0,
            buffers: HashMap::new(),
            support: HashMap::new(),
            edges: HashMap::new(),
            incident: HashMap::new(),
            page_counts: Vec::new(),
            expiry: BinaryHeap::new(),
            scratch: Vec::new(),
        }
    }

    /// Warm-start a **cumulative** projector from an already-materialised
    /// BTM: the result is state-equivalent to ingesting every BTM event one
    /// at a time, but is built with the batch flat kernel
    /// ([`coordination_core::project::page_pairs_flat`]) — one sort+dedup
    /// pass per page instead of a backward pairing scan per event. Use it to
    /// bootstrap a live projector from a historical log before switching to
    /// per-event ingestion; subsequent [`ingest`](Self::ingest) timestamps
    /// must be ≥ the BTM's newest event, as always.
    pub fn warm_start(window: Window, btm: &Btm) -> Self {
        let mut p = Self::new(window);
        let mut pairs: Vec<u64> = Vec::new();
        for (pid, comments) in btm.pages() {
            let page = pid.0;
            let &(last_ts, _) = comments.last().expect("pages() yields non-empty pages");
            if !p.started || last_ts > p.now {
                p.now = last_ts;
            }
            p.started = true;
            for &(_, a) in comments {
                if p.n_authors <= a.0 {
                    p.n_authors = a.0 + 1;
                }
            }
            // The recent buffer is exactly what per-event pruning would have
            // left: comments still within δ2 of the page's own newest
            // arrival (stale pages keep their tail — pruning only ever
            // happens on an arrival to the same page).
            let keep = comments
                .iter()
                .position(|&(t, _)| last_ts - t <= window.d2())
                .unwrap_or(comments.len());
            p.buffers.insert(
                page,
                comments[keep..].iter().map(|&(t, a)| (t, a.0)).collect(),
            );
            // Supported pairs via the shared flat kernel. Cumulative mode
            // never reads the support timestamp (only presence matters, and
            // nothing expires), so the page's newest comment stands in for
            // the pair's last qualifying interaction.
            page_pairs_flat(comments, &window, &mut pairs);
            for &packed in &pairs {
                let pair = unpack_pair(packed);
                p.support.insert((page, pair), last_ts);
                *p.edges.entry(pair).or_insert(0) += 1;
                for a in [pair.0, pair.1] {
                    *p.incident.entry((page, a)).or_insert(0) += 1;
                }
            }
        }
        p.page_counts = vec![0; p.n_authors as usize];
        for &(_, a) in p.incident.keys() {
            p.page_counts[a as usize] += 1;
        }
        p
    }

    /// [`StreamProjector::warm_start`] straight from an opened on-disk
    /// snapshot: the BTM streams out of the mapped event columns
    /// ([`coordination_core::snapshot::btm_from_snapshot`]), so bootstrapping
    /// a live projector from a historical archive never materializes the
    /// archive's dataset — only the projector's own state is resident.
    pub fn warm_start_snapshot(window: Window, snap: &coordination_core::store::Snapshot) -> Self {
        Self::warm_start(
            window,
            &coordination_core::snapshot::btm_from_snapshot(snap),
        )
    }

    /// The projection window.
    pub fn window(&self) -> Window {
        self.window
    }

    /// The retention horizon, if sliding.
    pub fn horizon(&self) -> Option<i64> {
        self.horizon
    }

    /// Stream time: the newest timestamp ingested, or `None` before the
    /// first event.
    pub fn now(&self) -> Option<Timestamp> {
        self.started.then_some(self.now)
    }

    /// 1 + the largest author id seen so far.
    pub fn n_authors_seen(&self) -> u32 {
        self.n_authors
    }

    /// Number of live edges (pairs with `w' ≥ 1`).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Current weight of an edge (0 if absent).
    pub fn weight(&self, x: u32, y: u32) -> u64 {
        self.edges.get(&(x.min(y), x.max(y))).copied().unwrap_or(0)
    }

    /// Current `P'_x` (0 for authors not yet seen).
    pub fn page_count(&self, x: u32) -> u64 {
        self.page_counts.get(x as usize).copied().unwrap_or(0)
    }

    /// Dense `P'` for the authors seen so far.
    pub fn page_counts(&self) -> &[u64] {
        &self.page_counts
    }

    /// Ingest one event and return the edge deltas it caused (expiries the
    /// event's timestamp triggered, then any +1 from the event itself). The
    /// returned slice is valid until the next `ingest` call.
    ///
    /// # Panics
    ///
    /// If `ts` precedes an already-ingested timestamp.
    pub fn ingest(&mut self, author: u32, page: u32, ts: Timestamp) -> &[EdgeDelta] {
        assert!(
            !self.started || ts >= self.now,
            "out-of-order event: ts {ts} after stream time {} — sort the source first",
            self.now
        );
        self.now = ts;
        self.started = true;
        self.scratch.clear();

        if self.n_authors <= author {
            self.n_authors = author + 1;
            self.page_counts.resize(self.n_authors as usize, 0);
        }

        // 1. Retire page contributions whose horizon has lapsed.
        self.expire_until(ts);

        // 2. Pair the arrival against the page's recent comments.
        let buffer = self.buffers.entry(page).or_default();
        while let Some(&(t_old, _)) = buffer.front() {
            if ts - t_old > self.window.d2() {
                buffer.pop_front();
            } else {
                break;
            }
        }
        let (d1, horizon) = (self.window.d1(), self.horizon);
        for &(t_old, a_old) in buffer.iter() {
            // Everything left in the buffer is within δ2; enforce δ1 and
            // skip self-pairs (same account commenting twice).
            if ts - t_old < d1 || a_old == author {
                continue;
            }
            let pair = (a_old.min(author), a_old.max(author));
            match self.support.insert((page, pair), ts) {
                Some(_) => {} // refreshed: page already supports this pair
                None => {
                    let w = self.edges.entry(pair).or_insert(0);
                    *w += 1;
                    self.scratch.push(EdgeDelta {
                        x: pair.0,
                        y: pair.1,
                        new_weight: *w,
                        delta: 1,
                    });
                    for a in [pair.0, pair.1] {
                        let r = self.incident.entry((page, a)).or_insert(0);
                        *r += 1;
                        if *r == 1 {
                            self.page_counts[a as usize] += 1;
                        }
                    }
                }
            }
            if let Some(h) = horizon {
                self.expiry.push(Reverse((ts + h, page, pair)));
            }
        }
        buffer.push_back((ts, author));

        &self.scratch
    }

    /// Advance the stream clock without an event (e.g. a timer tick in a
    /// live deployment), expiring lapsed contributions. No-op in cumulative
    /// mode. Returns the −1 deltas.
    pub fn advance_to(&mut self, ts: Timestamp) -> &[EdgeDelta] {
        assert!(
            !self.started || ts >= self.now,
            "cannot advance stream time backwards ({ts} < {})",
            self.now
        );
        self.now = ts;
        self.started = true;
        self.scratch.clear();
        self.expire_until(ts);
        &self.scratch
    }

    fn expire_until(&mut self, now: Timestamp) {
        let Some(h) = self.horizon else { return };
        while let Some(&Reverse((due, page, pair))) = self.expiry.peek() {
            if due >= now {
                break;
            }
            self.expiry.pop();
            // Stale entry if the pair was refreshed (or already expired):
            // only act when the recorded last interaction matches this due
            // time.
            match self.support.get(&(page, pair)) {
                Some(&last) if last + h == due => {}
                _ => continue,
            }
            self.support.remove(&(page, pair));
            let w = self
                .edges
                .get_mut(&pair)
                .expect("supported pair must have an edge");
            *w -= 1;
            let new_weight = *w;
            if new_weight == 0 {
                self.edges.remove(&pair);
            }
            self.scratch.push(EdgeDelta {
                x: pair.0,
                y: pair.1,
                new_weight,
                delta: -1,
            });
            for a in [pair.0, pair.1] {
                let r = self
                    .incident
                    .get_mut(&(page, a))
                    .expect("supported pair must be refcounted");
                *r -= 1;
                if *r == 0 {
                    self.incident.remove(&(page, a));
                    self.page_counts[a as usize] -= 1;
                }
            }
        }
    }

    /// Materialise the current CI graph. `n_authors` must cover every author
    /// id the stream has produced (pass the interner length so the snapshot
    /// aligns with a batch projection of the same dataset).
    pub fn snapshot(&self, n_authors: u32) -> CiGraph {
        assert!(
            n_authors >= self.n_authors,
            "snapshot over {n_authors} authors but ids up to {} were seen",
            self.n_authors
        );
        let mut page_counts = self.page_counts.clone();
        page_counts.resize(n_authors as usize, 0);
        // straight to CSR: the live edge table is drained by iteration, with
        // no intermediate HashMap clone
        CiGraph::from_weighted_edges(n_authors, self.edges(), page_counts)
    }

    /// Iterate the live edges as `(x, y, w')` with `x < y`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        self.edges.iter().map(|(&(x, y), &w)| (x, y, w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::btm::Btm;
    use coordination_core::ids::{AuthorId, Event, PageId};
    use coordination_core::project;

    fn drive(events: &[(u32, u32, Timestamp)], window: Window) -> StreamProjector {
        let mut p = StreamProjector::new(window);
        let mut sorted = events.to_vec();
        sorted.sort_by_key(|&(_, _, t)| t);
        for &(a, pg, t) in &sorted {
            p.ingest(a, pg, t);
        }
        p
    }

    #[test]
    fn pair_within_window_creates_edge() {
        let p = drive(&[(0, 0, 100), (1, 0, 130)], Window::new(0, 60));
        assert_eq!(p.weight(0, 1), 1);
        assert_eq!(p.page_count(0), 1);
        assert_eq!(p.page_count(1), 1);
    }

    #[test]
    fn pair_outside_window_is_ignored() {
        let p = drive(&[(0, 0, 100), (1, 0, 200)], Window::new(0, 60));
        assert_eq!(p.weight(0, 1), 0);
        assert_eq!(p.n_edges(), 0);
        assert_eq!(p.page_count(0), 0);
    }

    #[test]
    fn d1_lower_bound_is_enforced() {
        // dt = 5 < δ1 = 10: no pair; dt = 10 qualifies (inclusive).
        let p = drive(&[(0, 0, 100), (1, 0, 105)], Window::new(10, 60));
        assert_eq!(p.weight(0, 1), 0);
        let q = drive(&[(0, 0, 100), (1, 0, 110)], Window::new(10, 60));
        assert_eq!(q.weight(0, 1), 1);
    }

    #[test]
    fn page_supports_a_pair_once() {
        // Four interleaved comments by the same two accounts on one page:
        // still w' = 1 (pages are deduped, Algorithm 1's HashSet).
        let p = drive(
            &[(0, 0, 100), (1, 0, 110), (0, 0, 120), (1, 0, 130)],
            Window::new(0, 60),
        );
        assert_eq!(p.weight(0, 1), 1);
        assert_eq!(p.page_count(0), 1);
    }

    #[test]
    fn weight_counts_pages_not_interactions() {
        let p = drive(
            &[(0, 0, 100), (1, 0, 110), (0, 1, 500), (1, 1, 510)],
            Window::new(0, 60),
        );
        assert_eq!(p.weight(0, 1), 2);
        assert_eq!(p.page_count(0), 2);
        assert_eq!(p.page_count(1), 2);
    }

    #[test]
    fn self_interactions_never_project() {
        let p = drive(&[(3, 0, 100), (3, 0, 110)], Window::new(0, 60));
        assert_eq!(p.n_edges(), 0);
    }

    #[test]
    fn deltas_fire_on_first_support_only() {
        let mut p = StreamProjector::new(Window::new(0, 60));
        assert!(p.ingest(0, 0, 100).is_empty());
        let d = p.ingest(1, 0, 110).to_vec();
        assert_eq!(
            d,
            vec![EdgeDelta {
                x: 0,
                y: 1,
                new_weight: 1,
                delta: 1
            }]
        );
        // same page, same pair again: no delta
        assert!(p.ingest(0, 0, 120).is_empty());
        // new page lifts the weight to 2
        p.ingest(0, 1, 500);
        let d = p.ingest(1, 1, 520).to_vec();
        assert_eq!(
            d,
            vec![EdgeDelta {
                x: 0,
                y: 1,
                new_weight: 2,
                delta: 1
            }]
        );
    }

    #[test]
    fn expiry_emits_negative_deltas_and_shrinks_p_prime() {
        let mut p = StreamProjector::with_horizon(Window::new(0, 60), Some(100));
        p.ingest(0, 0, 100);
        p.ingest(1, 0, 110); // pair supported, last interaction at 110
        assert_eq!(p.weight(0, 1), 1);
        assert_eq!(p.page_count(0), 1);
        // 110 + 100 = 210: contribution lives through stream time 210 …
        assert!(p.advance_to(210).is_empty());
        assert_eq!(p.weight(0, 1), 1);
        // … and lapses the tick after.
        let d = p.advance_to(211).to_vec();
        assert_eq!(
            d,
            vec![EdgeDelta {
                x: 0,
                y: 1,
                new_weight: 0,
                delta: -1
            }]
        );
        assert_eq!(p.weight(0, 1), 0);
        assert_eq!(p.page_count(0), 0);
        assert_eq!(p.page_count(1), 0);
        assert_eq!(p.n_edges(), 0);
    }

    #[test]
    fn refreshed_pairs_outlive_their_first_expiry() {
        let mut p = StreamProjector::with_horizon(Window::new(0, 60), Some(100));
        p.ingest(0, 0, 100);
        p.ingest(1, 0, 110);
        // refresh the interaction at t=150 (same page, same pair)
        p.ingest(0, 0, 150);
        // the original 110+100=210 deadline must not fire…
        assert!(p.advance_to(230).is_empty());
        assert_eq!(p.weight(0, 1), 1);
        // …but the refreshed 150+100=250 one does.
        let d = p.advance_to(260).to_vec();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].delta, -1);
        assert_eq!(p.weight(0, 1), 0);
    }

    #[test]
    fn expiry_only_drops_the_lapsed_page_contribution() {
        let mut p = StreamProjector::with_horizon(Window::new(0, 60), Some(100));
        p.ingest(0, 0, 100);
        p.ingest(1, 0, 110); // page 0 supports (0,1), deadline 210
        p.ingest(0, 1, 300);
        p.ingest(1, 1, 310); // page 1 supports (0,1), deadline 410
                             // page 0's contribution lapsed when stream time reached 300 — the
                             // ingest at 300 already expired it.
        assert_eq!(p.weight(0, 1), 1);
        assert_eq!(p.page_count(0), 1);
        let d = p.advance_to(411).to_vec();
        assert_eq!(
            d,
            vec![EdgeDelta {
                x: 0,
                y: 1,
                new_weight: 0,
                delta: -1
            }]
        );
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_events_panic() {
        let mut p = StreamProjector::new(Window::new(0, 60));
        p.ingest(0, 0, 100);
        p.ingest(1, 0, 50);
    }

    #[test]
    #[should_panic(expected = "must cover the projection window")]
    fn horizon_shorter_than_window_rejected() {
        StreamProjector::with_horizon(Window::new(0, 600), Some(60));
    }

    #[test]
    fn cumulative_snapshot_matches_batch_projection() {
        // A small deliberately gnarly log: duplicate timestamps, repeat
        // authors, pairs straddling the window edge.
        let events = vec![
            (0u32, 0u32, 100i64),
            (1, 0, 100), // dt = 0 pairs (δ1 = 0)
            (2, 0, 160), // dt 60 from both: inclusive upper bound
            (3, 0, 161), // dt 61 from 0/1: out; dt 1 from 2: in
            (0, 1, 500),
            (2, 1, 540),
            (0, 1, 560), // same pair again on page 1
            (4, 2, 900), // lonely author on its own page
        ];
        let window = Window::new(0, 60);
        let p = drive(&events, window);

        let evs: Vec<Event> = events
            .iter()
            .map(|&(a, g, t)| Event::new(AuthorId(a), PageId(g), t))
            .collect();
        let btm = Btm::from_events(5, 3, &evs);
        let batch = project::project(&btm, window);
        let snap = p.snapshot(5);
        assert_eq!(snap.n_edges(), batch.n_edges());
        for (x, y, w) in batch.edges() {
            assert_eq!(snap.weight(AuthorId(x), AuthorId(y)), w, "edge ({x},{y})");
        }
        assert_eq!(snap.page_counts(), batch.page_counts());
    }

    #[test]
    fn warm_start_matches_batch_and_incremental() {
        let events = vec![
            (0u32, 0u32, 100i64),
            (1, 0, 100),
            (2, 0, 160),
            (3, 0, 161),
            (0, 1, 500),
            (2, 1, 540),
            (0, 1, 560),
            (4, 2, 900),
        ];
        let window = Window::new(0, 60);
        let evs: Vec<Event> = events
            .iter()
            .map(|&(a, g, t)| Event::new(AuthorId(a), PageId(g), t))
            .collect();
        let btm = Btm::from_events(5, 3, &evs);
        let warm = StreamProjector::warm_start(window, &btm);
        let batch = project::project(&btm, window);
        let snap = warm.snapshot(5);
        assert_eq!(snap.n_edges(), batch.n_edges());
        for (x, y, w) in batch.edges() {
            assert_eq!(snap.weight(AuthorId(x), AuthorId(y)), w, "edge ({x},{y})");
        }
        assert_eq!(snap.page_counts(), batch.page_counts());

        // State equivalence, not just snapshot equivalence: the incremental
        // drive of the same log must agree field-for-field on the queryable
        // surface.
        let inc = drive(&events, window);
        assert_eq!(warm.n_edges(), inc.n_edges());
        assert_eq!(warm.now(), inc.now());
    }

    #[test]
    fn warm_start_snapshot_matches_warm_start() {
        let events = vec![
            (0u32, 0u32, 100i64),
            (1, 0, 100),
            (2, 0, 160),
            (3, 0, 161),
            (0, 1, 500),
            (2, 1, 540),
            (0, 1, 560),
            (4, 2, 900),
        ];
        let window = Window::new(0, 60);
        let evs: Vec<Event> = events
            .iter()
            .map(|&(a, g, t)| Event::new(AuthorId(a), PageId(g), t))
            .collect();
        let btm = Btm::from_events(5, 3, &evs);

        let mut w = coordination_core::store::SnapshotWriter::new();
        let authors: Vec<String> = (0..5).map(|i| format!("a{i}")).collect();
        let pages: Vec<String> = (0..3).map(|i| format!("p{i}")).collect();
        w.authors(authors.iter().map(String::as_str));
        w.pages(pages.iter().map(String::as_str));
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(_, _, t)| t);
        w.events(&sorted).unwrap();
        let disk = coordination_core::store::Snapshot::from_bytes(w.to_bytes().unwrap()).unwrap();

        let from_btm = StreamProjector::warm_start(window, &btm);
        let from_snap = StreamProjector::warm_start_snapshot(window, &disk);
        assert_eq!(from_btm.n_edges(), from_snap.n_edges());
        assert_eq!(from_btm.now(), from_snap.now());
        let a = from_btm.snapshot(5);
        let b = from_snap.snapshot(5);
        for (x, y, w) in a.edges() {
            assert_eq!(b.weight(AuthorId(x), AuthorId(y)), w, "edge ({x},{y})");
        }
        assert_eq!(a.n_edges(), b.n_edges());
        assert_eq!(a.page_counts(), b.page_counts());
    }

    #[test]
    fn warm_start_then_ingest_matches_full_drive() {
        // Split a log mid-page so the warm-started buffers matter: the
        // suffix events pair with prefix comments still inside δ2.
        let events = vec![
            (0u32, 0u32, 100i64),
            (1, 0, 110),
            (0, 1, 200),
            (2, 0, 150), // prefix ends here (sorted order: 100,110,150,200)
            (3, 0, 205), // pairs with (2,0,150) across the split
            (1, 1, 230), // pairs with (0,1,200) across the split
            (4, 2, 300),
            (0, 2, 350),
        ];
        let window = Window::new(0, 60);
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(_, _, t)| t);
        let (prefix, suffix) = sorted.split_at(4);

        let evs: Vec<Event> = prefix
            .iter()
            .map(|&(a, g, t)| Event::new(AuthorId(a), PageId(g), t))
            .collect();
        let btm = Btm::from_events(5, 3, &evs);
        let mut warm = StreamProjector::warm_start(window, &btm);
        for &(a, g, t) in suffix {
            warm.ingest(a, g, t);
        }

        let full = drive(&events, window);
        assert_eq!(warm.n_edges(), full.n_edges());
        let warm_snap = warm.snapshot(5);
        let full_snap = full.snapshot(5);
        for (x, y, w) in full_snap.edges() {
            assert_eq!(
                warm_snap.weight(AuthorId(x), AuthorId(y)),
                w,
                "edge ({x},{y})"
            );
        }
        assert_eq!(warm_snap.page_counts(), full_snap.page_counts());
    }

    #[test]
    fn equal_timestamp_arrival_order_is_irrelevant() {
        let window = Window::new(0, 60);
        let a = drive(&[(0, 0, 100), (1, 0, 100), (2, 0, 100)], window);
        let b = drive(&[(2, 0, 100), (0, 0, 100), (1, 0, 100)], window);
        for (x, y) in [(0, 1), (0, 2), (1, 2)] {
            assert_eq!(a.weight(x, y), 1);
            assert_eq!(a.weight(x, y), b.weight(x, y));
        }
    }
}
