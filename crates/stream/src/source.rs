//! Event sources: timestamp-ordered record streams for the engine.
//!
//! The projector requires non-decreasing timestamps, so every source here
//! sorts up front (a real firehose would instead sit behind a small reorder
//! buffer). Two concrete sources cover the repo's data paths:
//!
//! * pushshift-style NDJSON (`{"author", "link_id", "created_utc"}` per
//!   line) via [`read_ndjson_sorted`];
//! * synthetic [`redditgen`] scenarios via [`scenario_records`], which keeps
//!   the ground truth available for latency measurements.
//!
//! [`Replay`] optionally paces either stream against the wall clock with a
//! configurable speedup — 3600× replays an hour of Reddit per second — for
//! demo runs of the CLI; tests and benches leave pacing off and ingest at
//! full speed.

use std::io::BufRead;
use std::time::{Duration, Instant};

use coordination_core::ingest::{ingest_records_slice, IngestConfig, IngestStats};
use coordination_core::records::{CommentRecord, ReadError};
use redditgen::Scenario;

/// Sort records into the engine's required order: by timestamp, with
/// (author, page) as a deterministic tie-break. The tie-break never changes
/// the projection (pair keys are unordered) but keeps replays reproducible.
pub fn sort_records(records: &mut [CommentRecord]) {
    records.sort_by(|a, b| {
        (a.created_utc, &a.author, &a.link_id).cmp(&(b.created_utc, &b.author, &b.link_id))
    });
}

/// Read NDJSON comment records from a byte buffer — parsed in parallel by
/// the chunked [`coordination_core::ingest`] layer — and return them in
/// stream order plus the ingest counters (skipped lines in lossy mode,
/// scanner fallbacks).
pub fn read_ndjson_sorted_slice(
    buf: &[u8],
    skip_bad_lines: bool,
) -> Result<(Vec<CommentRecord>, IngestStats), ReadError> {
    let cfg = IngestConfig {
        skip_bad_lines,
        ..IngestConfig::default()
    };
    let (mut records, stats) = ingest_records_slice(buf, &cfg)?;
    sort_records(&mut records);
    Ok((records, stats))
}

/// Read NDJSON comment records and return them in stream order. Drains the
/// reader and delegates to the parallel [`read_ndjson_sorted_slice`].
pub fn read_ndjson_sorted<R: BufRead>(mut reader: R) -> Result<Vec<CommentRecord>, ReadError> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    read_ndjson_sorted_slice(&buf, false).map(|(records, _)| records)
}

/// A scenario's records in stream order (cloned; the scenario keeps its
/// ground truth for judging alerts afterwards).
pub fn scenario_records(scenario: &Scenario) -> Vec<CommentRecord> {
    let mut records = scenario.records.clone();
    sort_records(&mut records);
    records
}

/// A pacing wrapper: yields records in order, optionally sleeping so that
/// stream time advances `speedup`× faster than wall time.
pub struct Replay {
    records: std::vec::IntoIter<CommentRecord>,
    /// `None` = as fast as possible.
    speedup: Option<f64>,
    /// (wall-clock start, stream timestamp of the first record).
    origin: Option<(Instant, i64)>,
}

impl Replay {
    /// Replay `records` (must already be in stream order) at full speed.
    pub fn new(records: Vec<CommentRecord>) -> Self {
        Replay {
            records: records.into_iter(),
            speedup: None,
            origin: None,
        }
    }

    /// Pace the replay: one stream-second takes `1/speedup` wall-seconds.
    /// Non-finite or non-positive values disable pacing.
    pub fn with_speedup(mut self, speedup: f64) -> Self {
        self.speedup = (speedup.is_finite() && speedup > 0.0).then_some(speedup);
        self
    }

    /// Records remaining.
    pub fn remaining(&self) -> usize {
        self.records.len()
    }
}

impl Iterator for Replay {
    type Item = CommentRecord;

    fn next(&mut self) -> Option<CommentRecord> {
        let record = self.records.next()?;
        if let Some(speedup) = self.speedup {
            let (start, t0) = *self
                .origin
                .get_or_insert_with(|| (Instant::now(), record.created_utc));
            let stream_elapsed = (record.created_utc - t0).max(0) as f64;
            let due = Duration::from_secs_f64(stream_elapsed / speedup);
            let elapsed = start.elapsed();
            if due > elapsed {
                std::thread::sleep(due - elapsed);
            }
        }
        Some(record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.records.size_hint()
    }
}

impl ExactSizeIterator for Replay {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn ndjson_source_sorts_by_timestamp() {
        let input = concat!(
            r#"{"author":"b","link_id":"t3_x","created_utc":300}"#,
            "\n",
            r#"{"author":"a","link_id":"t3_y","created_utc":100}"#,
            "\n",
            r#"{"author":"c","link_id":"t3_x","created_utc":200}"#,
            "\n",
        );
        let records = read_ndjson_sorted(Cursor::new(input)).unwrap();
        let ts: Vec<i64> = records.iter().map(|r| r.created_utc).collect();
        assert_eq!(ts, vec![100, 200, 300]);
    }

    #[test]
    fn lossy_slice_source_skips_and_counts_bad_lines() {
        let input = concat!(
            r#"{"author":"b","link_id":"t3_x","created_utc":300}"#,
            "\n",
            "garbage line\n",
            r#"{"author":"a","link_id":"t3_y","created_utc":100}"#,
            "\n",
        );
        let (records, stats) = read_ndjson_sorted_slice(input.as_bytes(), true).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].created_utc, 100);
        assert_eq!(stats.skipped_lines, 1);
        // strict mode aborts on the same input
        assert!(read_ndjson_sorted_slice(input.as_bytes(), false).is_err());
    }

    #[test]
    fn tie_break_is_deterministic() {
        let mut records = vec![
            CommentRecord::new("zed", "t3_b", 50),
            CommentRecord::new("ann", "t3_b", 50),
            CommentRecord::new("ann", "t3_a", 50),
        ];
        sort_records(&mut records);
        let order: Vec<(&str, &str)> = records
            .iter()
            .map(|r| (r.author.as_str(), r.link_id.as_str()))
            .collect();
        assert_eq!(
            order,
            vec![("ann", "t3_a"), ("ann", "t3_b"), ("zed", "t3_b")]
        );
    }

    #[test]
    fn unpaced_replay_yields_everything_in_order() {
        let records = vec![
            CommentRecord::new("a", "t3_x", 1),
            CommentRecord::new("b", "t3_x", 2),
        ];
        let replay = Replay::new(records.clone());
        assert_eq!(replay.len(), 2);
        let out: Vec<CommentRecord> = replay.collect();
        assert_eq!(out, records);
    }

    #[test]
    fn paced_replay_sleeps_proportionally() {
        // 10 stream-seconds at 1000× ≈ 10 ms wall — measurable but quick.
        let records = vec![
            CommentRecord::new("a", "t3_x", 0),
            CommentRecord::new("b", "t3_x", 10),
        ];
        let start = Instant::now();
        let n = Replay::new(records).with_speedup(1000.0).count();
        assert_eq!(n, 2);
        assert!(start.elapsed() >= Duration::from_millis(9));
    }

    #[test]
    fn scenario_records_are_stream_ordered() {
        let scenario = redditgen::ScenarioConfig::jan2020(0.02).build();
        let records = scenario_records(&scenario);
        assert!(!records.is_empty());
        assert!(records
            .windows(2)
            .all(|w| w[0].created_utc <= w[1].created_utc));
    }
}
