//! # stream — online coordination detection over a live event stream
//!
//! The batch pipeline (BTM → windowed projection → triangle survey) needs the
//! whole archive up front; this crate maintains the same structures
//! *incrementally* as comments arrive, so the injected botnets are caught
//! mid-stream instead of a month later:
//!
//! 1. [`source`] — event sources replaying pushshift-style NDJSON or
//!    [`redditgen`] scenarios in timestamp order, optionally paced against the
//!    wall clock with a configurable speedup;
//! 2. [`projector`] — a sliding-window incremental projector: per-page
//!    time-ordered comment buffers emit `w'` edge deltas (+1 when an author
//!    pair first interacts within `(δ1, δ2)` on a page, −1 when a page
//!    contribution expires past the retention horizon), with `P'` maintained
//!    through per-(page, author) pair refcounts;
//! 3. [`triangles`] — an incremental triangle tracker: each edge crossing the
//!    min-weight cutoff intersects adjacency lists to update the live set of
//!    surviving triangles (delta maintenance in the style of Zhao et al.'s
//!    triadic-cardinality tracking, instead of full re-enumeration);
//! 4. [`alert`] + [`engine`] — the alerting/snapshot layer: fires once per
//!    triplet when its score crosses the cutoff, and emits periodic
//!    [`CiGraph`](coordination_core::CiGraph) checkpoints that plug straight
//!    into the existing hypergraph-validation and `analysis` tooling.
//!
//! ## Equivalence contract
//!
//! With no retention horizon, ingesting any timestamp-ordered event log and
//! closing the window yields a CI graph **identical** (edges, weights, `P'`)
//! to [`coordination_core::project::project`] on the same events, and the
//! live triangle set equals `tripoll` enumeration on the thresholded
//! snapshot. `tests/stream_equivalence.rs` in the workspace root pins this
//! property over random datasets.
//!
//! ## Example
//!
//! ```
//! use coordination_core::Window;
//! use coordination_core::records::CommentRecord;
//! use stream::engine::{StreamConfig, StreamEngine};
//!
//! // three accounts echoing each other on four pages
//! let mut records = Vec::new();
//! for p in 0..4i64 {
//!     for (i, who) in ["a", "b", "c"].iter().enumerate() {
//!         records.push(CommentRecord::new(*who, format!("t3_{p}"), p * 1000 + i as i64));
//!     }
//! }
//! let mut engine = StreamEngine::new(StreamConfig {
//!     window: Window::new(0, 60),
//!     min_triangle_weight: 3,
//!     ..Default::default()
//! });
//! let mut alerts = Vec::new();
//! for r in &records {
//!     alerts.extend_from_slice(engine.ingest(r));
//! }
//! assert_eq!(alerts.len(), 1); // the trio fires once, on its third shared page
//! assert!(alerts[0].events_ingested < records.len() as u64); // mid-stream
//! ```

pub mod alert;
pub mod engine;
pub mod projector;
pub mod source;
pub mod triangles;

pub use alert::Alert;
pub use engine::{Checkpoint, StreamConfig, StreamEngine};
pub use projector::{EdgeDelta, StreamProjector};
pub use source::Replay;
pub use triangles::TriangleTracker;
