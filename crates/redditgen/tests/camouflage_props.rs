//! Property tests for the camouflage evasion (`bots::camouflage`): across
//! arbitrary share–reshare networks and decoy volumes, decoys must never
//! move the raw weights the paper's cutoffs read (`min w'`, `w_xyz`) beyond
//! collision noise, while the normalized scores (`C`, and `T` where decoys
//! touch the CI graph at all) only ever degrade as `decoy_ratio` grows —
//! the invariant the injector's module docs claim and the quality bench
//! depends on when it quantifies per-metric evasion.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use coordination_core::pipeline::{Pipeline, PipelineConfig};
use coordination_core::records::Dataset;
use coordination_core::{TripletMetrics, Window};
use redditgen::bots::camouflage::{add_decoys, CamouflageConfig};
use redditgen::bots::reshare::{self, ReshareConfig};

/// Decoy volumes swept per case, ascending. Ratio 0 is the clean baseline.
const RATIOS: [f64; 4] = [0.0, 1.0, 2.0, 4.0];

/// Big page pool: decoys almost never collide on a page, so they inflate
/// `p_x` / `P'_x` without adding shared pages (the same regime the unit
/// tests and the paper's normalization argument assume).
const ORGANIC_PAGES: usize = 4_000;

/// Run the full pipeline on `records` and pull out the metrics of the
/// triplet formed by the first three network members.
fn bot_triplet(records: Vec<coordination_core::records::CommentRecord>) -> TripletMetrics {
    let ds = Dataset::from_records(records);
    let out = Pipeline::new(PipelineConfig {
        window: Window::zero_to_60s(),
        min_triangle_weight: 3,
        ..Default::default()
    })
    .run_dataset(&ds);
    let mut ids = [
        ds.authors.get("stream_bot_0").expect("bot 0 exists"),
        ds.authors.get("stream_bot_1").expect("bot 1 exists"),
        ds.authors.get("stream_bot_2").expect("bot 2 exists"),
    ];
    ids.sort_unstable();
    *out.triplets
        .iter()
        .find(|m| m.authors.map(|a| a.0) == ids)
        .expect("the bot triplet survives the survey at every decoy ratio")
}

/// Metrics of the first-three-bots triplet at each ratio in [`RATIOS`].
fn sweep(seed: u64, cfg: &ReshareConfig) -> Vec<TripletMetrics> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let inj = reshare::generate(cfg, &mut rng);
    let pages: Vec<String> = (0..ORGANIC_PAGES).map(|i| format!("t3_org{i}")).collect();
    RATIOS
        .iter()
        .map(|&ratio| {
            // fresh decoy RNG per ratio so each sweep point is independent
            let mut drng = ChaCha8Rng::seed_from_u64(seed ^ 0xD0E5);
            let mut records = inj.records.clone();
            records.extend(add_decoys(
                &CamouflageConfig {
                    decoy_ratio: ratio,
                    organic_pages: pages.clone(),
                },
                &inj.members,
                &inj.records,
                &mut drng,
            ));
            bot_triplet(records)
        })
        .collect()
}

fn arb_network() -> impl Strategy<Value = (u64, ReshareConfig)> {
    (0u64..1 << 48, 3usize..7, 30usize..70).prop_map(|(seed, n_members, n_triggers)| {
        (
            seed,
            ReshareConfig {
                n_members,
                n_triggers,
                // high participation so the first three members reliably
                // form a surveyed triangle at every generated size
                participation: 0.95,
                ..Default::default()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Decoys never move the raw weights: `min w'` stays within collision
    /// noise of the clean run at every ratio, and `w_xyz` can only pick up
    /// the rare page collision (never lose weight).
    #[test]
    fn decoys_never_change_raw_weights((seed, cfg) in arb_network()) {
        let ms = sweep(seed, &cfg);
        let clean = &ms[0];
        for m in &ms[1..] {
            prop_assert!(
                m.min_ci_weight <= clean.min_ci_weight + 2
                    && m.min_ci_weight + 2 >= clean.min_ci_weight,
                "min w' moved beyond noise: {} -> {}",
                clean.min_ci_weight,
                m.min_ci_weight
            );
            prop_assert!(
                m.hyper_weight >= clean.hyper_weight
                    && m.hyper_weight <= clean.hyper_weight + 2,
                "w_xyz moved beyond collision noise: {} -> {}",
                clean.hyper_weight,
                m.hyper_weight
            );
        }
    }

    /// The normalized scores only degrade as the decoy volume grows: `C`
    /// strictly per step (every step adds decoy pages to every `p_x`), `T`
    /// weakly (decoys touch `P'_x` only on the rare synchronized collision),
    /// and at the top ratio `C` has collapsed well below the clean run.
    #[test]
    fn normalized_scores_degrade_monotonically((seed, cfg) in arb_network()) {
        let ms = sweep(seed, &cfg);
        for step in ms.windows(2) {
            prop_assert!(
                step[1].c < step[0].c,
                "C failed to dilute: {:.4} -> {:.4}",
                step[0].c,
                step[1].c
            );
            prop_assert!(
                step[1].t <= step[0].t * 1.02 + 1e-9,
                "T grew: {:.4} -> {:.4}",
                step[0].t,
                step[1].t
            );
        }
        prop_assert!(
            ms[3].c < ms[0].c * 0.5,
            "4x decoys should halve C: {:.4} -> {:.4}",
            ms[0].c,
            ms[3].c
        );
    }
}
