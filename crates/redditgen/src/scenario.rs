//! Month-scale scenario presets mirroring the paper's two analyses.
//!
//! A scenario merges organic traffic with any subset of botnet injectors and
//! returns the time-sorted records plus the ground truth. Two presets:
//!
//! * [`ScenarioConfig::jan2020`] — the January 2020 cast: GPT-2 generation
//!   subreddit, MLB-restream share–reshare ring, the smiley reply-bot trio
//!   (the figure-4 outlier), AutoModerator/`[deleted]`, and organic bulk;
//! * [`ScenarioConfig::oct2016`] — October 2016: a smaller network with two
//!   share–reshare rings (one political amplifier, one link ring) and **no**
//!   GPT-2 (it did not exist) and no smiley trio — which is why the paper's
//!   Figure 6 lacks the second artifact visible in Figure 4.
//!
//! Four adversarial presets (`adv_jitter`, `adv_slow_drip`, `adv_churn`,
//! `adv_mimicry`) each plant exactly one evasion family in a mid-size organic
//! month; the quality bench sweeps every score metric over them to quantify
//! which paper metric survives which evasion. [`ScenarioConfig::preset`]
//! resolves all six by name.
//!
//! The `scale` knob multiplies entity counts so benches can sweep sizes; the
//! default `1.0` runs the whole pipeline in seconds on a laptop while keeping
//! every structural relationship (who wins, what dominates, where the outliers
//! sit) intact.

use coordination_core::records::{CommentRecord, Dataset};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bots::churn::{self, ChurnConfig};
use crate::bots::gpt2::{self, Gpt2Config};
use crate::bots::helpful::{self, HelpfulConfig};
use crate::bots::jitter::{self, JitterConfig};
use crate::bots::mimicry::{self, MimicryConfig};
use crate::bots::reply_trigger::{self, ReplyTriggerConfig};
use crate::bots::reshare::{self, ReshareConfig};
use crate::bots::slow_burn::{self, SlowBurnConfig};
use crate::bots::slow_drip::{self, SlowDripConfig};
use crate::organic::OrganicConfig;
use crate::truth::{BotFamily, BotKind, GroundTruth};

/// Full configuration of one generated month.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Scenario label (propagated into reports).
    pub name: String,
    /// RNG seed; everything is deterministic given this.
    pub seed: u64,
    /// The organic baseline.
    pub organic: OrganicConfig,
    /// Optional GPT-2-style network.
    pub gpt2: Option<Gpt2Config>,
    /// Share–reshare networks (each becomes its own family), with labels.
    pub reshare: Vec<(String, ReshareConfig)>,
    /// Optional reply-trigger bots over the organic stream.
    pub reply_trigger: Option<ReplyTriggerConfig>,
    /// Optional slow-burn network (minute-scale responses; only long windows
    /// catch it — the window-study payoff).
    pub slow_burn: Option<SlowBurnConfig>,
    /// Optional window-straddling clique (evasion; `adv_jitter` preset).
    pub jitter: Option<JitterConfig>,
    /// Optional below-the-cutoff drip network (evasion; `adv_slow_drip`).
    pub slow_drip: Option<SlowDripConfig>,
    /// Optional handle-rotating network (evasion; `adv_churn`). Its rotated
    /// handles are registered as ground-truth aliases.
    pub churn: Option<ChurnConfig>,
    /// Optional diurnal-mimicking network (evasion; `adv_mimicry`).
    pub mimicry: Option<MimicryConfig>,
    /// Optional platform-role accounts.
    pub helpful: Option<HelpfulConfig>,
}

fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale) as usize).max(min)
}

impl ScenarioConfig {
    /// The January 2020 preset at the given scale (1.0 ≈ 75k comments).
    pub fn jan2020(scale: f64) -> Self {
        ScenarioConfig {
            name: "jan2020".to_string(),
            seed: 0x0020_2001,
            organic: OrganicConfig {
                n_users: scaled(5_000, scale, 50),
                n_pages: scaled(4_000, scale, 40),
                n_comments: scaled(60_000, scale, 500),
                n_subreddits: scaled(40, scale, 5),
                affinity: 0.8,
                ..Default::default()
            },
            // Botnet parameters deliberately do NOT scale: a network's
            // per-pair weights are set by its own event cadence (games
            // restreamed, pages generated), not by how big the rest of the
            // platform is. Scaling them would shift the weight bands the
            // paper reports (25–33 for GPT-2, 27–91 for the restream ring).
            gpt2: Some(Gpt2Config::default()),
            reshare: vec![(
                "mlb_restream".to_string(),
                ReshareConfig {
                    n_members: 8,
                    n_triggers: 60,
                    ..Default::default()
                },
            )],
            reply_trigger: Some(ReplyTriggerConfig::default()),
            slow_burn: None,
            jitter: None,
            slow_drip: None,
            churn: None,
            mimicry: None,
            helpful: Some(HelpfulConfig::default()),
        }
    }

    /// The October 2016 preset at the given scale (smaller month, no GPT-2,
    /// no smiley trio, one extra political amplification ring).
    pub fn oct2016(scale: f64) -> Self {
        ScenarioConfig {
            name: "oct2016".to_string(),
            seed: 0x0020_1610,
            organic: OrganicConfig {
                // denser than jan2020 per user: fewer accounts, chattier
                // threads, so the organic cloud crosses the figure cutoff at
                // the 10-minute and 1-hour windows like the paper's Figures 7–10
                n_users: scaled(1_200, scale, 40),
                n_pages: scaled(2_000, scale, 30),
                n_comments: scaled(35_000, scale, 400),
                burst_prob: 0.6,
                n_subreddits: scaled(25, scale, 4),
                affinity: 0.8,
                ..Default::default()
            },
            gpt2: None,
            reshare: vec![
                (
                    "election_amplifier".to_string(),
                    ReshareConfig {
                        n_members: 6,
                        n_triggers: 50,
                        participation: 0.8,
                        name_prefix: "maga_bot_".to_string(),
                        ..Default::default()
                    },
                ),
                (
                    "link_ring".to_string(),
                    ReshareConfig {
                        n_members: 5,
                        n_triggers: 40,
                        participation: 0.75,
                        name_prefix: "ring_bot_".to_string(),
                        ..Default::default()
                    },
                ),
            ],
            reply_trigger: None,
            // a curation ring responding on the minute scale: invisible to
            // the (0, 60s) hunt, surfaced by the 10-minute window (§2.2's
            // argument for window targeting)
            slow_burn: Some(SlowBurnConfig::default()),
            jitter: None,
            slow_drip: None,
            churn: None,
            mimicry: None,
            helpful: Some(HelpfulConfig::default()),
        }
    }

    /// The organic baseline shared by the adversarial presets: a mid-size
    /// month with community structure, big enough that the evader has a real
    /// haystack to hide in.
    fn adversarial_base(name: &str, seed: u64, scale: f64) -> Self {
        ScenarioConfig {
            name: name.to_string(),
            seed,
            organic: OrganicConfig {
                n_users: scaled(3_000, scale, 50),
                n_pages: scaled(2_500, scale, 40),
                n_comments: scaled(40_000, scale, 500),
                n_subreddits: scaled(30, scale, 5),
                affinity: 0.8,
                ..Default::default()
            },
            gpt2: None,
            reshare: Vec::new(),
            reply_trigger: None,
            slow_burn: None,
            jitter: None,
            slow_drip: None,
            churn: None,
            mimicry: None,
            helpful: Some(HelpfulConfig::default()),
        }
    }

    /// Evasion preset: a clique whose bursts straddle the (δ1, δ2) edge.
    pub fn adv_jitter(scale: f64) -> Self {
        ScenarioConfig {
            jitter: Some(JitterConfig::default()),
            ..Self::adversarial_base("adv_jitter", 0x00AD_0001, scale)
        }
    }

    /// Evasion preset: coordination rationed below the min-weight cutoff.
    pub fn adv_slow_drip(scale: f64) -> Self {
        ScenarioConfig {
            slow_drip: Some(SlowDripConfig::default()),
            ..Self::adversarial_base("adv_slow_drip", 0x00AD_0002, scale)
        }
    }

    /// Evasion preset: the network rotates handles mid-month (ground truth
    /// tracks the rotation via aliases).
    pub fn adv_churn(scale: f64) -> Self {
        ScenarioConfig {
            churn: Some(ChurnConfig::default()),
            ..Self::adversarial_base("adv_churn", 0x00AD_0003, scale)
        }
    }

    /// Evasion preset: diurnal-shaped bot activity on the organic time curve.
    pub fn adv_mimicry(scale: f64) -> Self {
        ScenarioConfig {
            mimicry: Some(MimicryConfig::default()),
            ..Self::adversarial_base("adv_mimicry", 0x00AD_0004, scale)
        }
    }

    /// Look up a preset by name (`jan2020`, `oct2016`, or one of the
    /// `adv_*` evasion scenarios). `None` for unknown names.
    pub fn preset(name: &str, scale: f64) -> Option<Self> {
        match name {
            "jan2020" => Some(Self::jan2020(scale)),
            "oct2016" => Some(Self::oct2016(scale)),
            "adv_jitter" => Some(Self::adv_jitter(scale)),
            "adv_slow_drip" => Some(Self::adv_slow_drip(scale)),
            "adv_churn" => Some(Self::adv_churn(scale)),
            "adv_mimicry" => Some(Self::adv_mimicry(scale)),
            _ => None,
        }
    }

    /// Every preset name accepted by [`ScenarioConfig::preset`], paper
    /// scenarios first.
    pub const PRESETS: [&'static str; 6] = [
        "jan2020",
        "oct2016",
        "adv_jitter",
        "adv_slow_drip",
        "adv_churn",
        "adv_mimicry",
    ];

    /// Generate the scenario.
    pub fn build(&self) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut truth = GroundTruth::new();
        let mut records = crate::organic::generate(&self.organic, &mut rng);

        if let Some(cfg) = &self.gpt2 {
            let inj = gpt2::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "gpt2".to_string(),
                members: inj.members,
                kind: BotKind::Gpt2,
            });
            records.extend(inj.records);
        }
        for (label, cfg) in &self.reshare {
            let inj = reshare::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: label.clone(),
                members: inj.members,
                kind: BotKind::ShareReshare,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.slow_burn {
            let inj = slow_burn::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "slow_burn".to_string(),
                members: inj.members,
                kind: BotKind::SlowBurn,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.jitter {
            let inj = jitter::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "jitter".to_string(),
                members: inj.members,
                kind: BotKind::JitteredClique,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.slow_drip {
            let inj = slow_drip::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "slow_drip".to_string(),
                members: inj.members,
                kind: BotKind::SlowDrip,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.churn {
            let inj = churn::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "churn".to_string(),
                members: inj.members,
                kind: BotKind::Churn,
            });
            for (alias, canonical) in &inj.aliases {
                truth.add_alias(alias.clone(), canonical);
            }
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.mimicry {
            let inj = mimicry::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "mimicry".to_string(),
                members: inj.members,
                kind: BotKind::Mimicry,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.reply_trigger {
            // reply bots patrol the organic stream only (platform-wide sweep)
            let organic_only: Vec<CommentRecord> = records
                .iter()
                .filter(|r| r.link_id.starts_with(&self.organic.page_prefix))
                .cloned()
                .collect();
            let inj = reply_trigger::generate(cfg, &organic_only, &mut rng);
            truth.add_family(BotFamily {
                name: "reply_trigger".to_string(),
                members: inj.members,
                kind: BotKind::ReplyTrigger,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.helpful {
            let base: Vec<CommentRecord> = records.clone();
            let extra = helpful::generate(cfg, &base, &mut rng);
            truth.add_family(BotFamily {
                name: "platform_roles".to_string(),
                members: vec!["AutoModerator".to_string(), "[deleted]".to_string()],
                kind: BotKind::Helpful,
            });
            records.extend(extra);
        }

        records.sort_by(|a, b| {
            (a.created_utc, &a.author, &a.link_id).cmp(&(b.created_utc, &b.author, &b.link_id))
        });
        Scenario {
            name: self.name.clone(),
            records,
            truth,
        }
    }
}

/// A generated month: records in timestamp order plus ground truth.
pub struct Scenario {
    /// Scenario label.
    pub name: String,
    /// All comments, sorted by `(created_utc, author, link_id)`.
    pub records: Vec<CommentRecord>,
    /// Which accounts coordinate, and how.
    pub truth: GroundTruth,
}

impl Scenario {
    /// Intern into a [`Dataset`] ready for the pipeline.
    pub fn dataset(&self) -> Dataset {
        Dataset::from_records(self.records.iter().cloned())
    }

    /// Total comments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the scenario has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jan2020_contains_every_cast_member() {
        let s = ScenarioConfig::jan2020(0.1).build();
        assert!(!s.is_empty());
        let authors: std::collections::HashSet<&str> =
            s.records.iter().map(|r| r.author.as_str()).collect();
        assert!(authors.iter().any(|a| a.starts_with("gpt2_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("stream_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("smiley_bot_")));
        assert!(authors.contains("AutoModerator"));
        assert!(authors.iter().any(|a| a.starts_with("user")));
        // ground truth covers the cast
        assert_eq!(s.truth.families().len(), 4);
        assert!(s.truth.is_bot("smiley_bot_0"));
    }

    #[test]
    fn oct2016_lacks_gpt2_and_smiley() {
        let s = ScenarioConfig::oct2016(0.1).build();
        let authors: std::collections::HashSet<&str> =
            s.records.iter().map(|r| r.author.as_str()).collect();
        assert!(!authors.iter().any(|a| a.starts_with("gpt2_bot_")));
        assert!(!authors.iter().any(|a| a.starts_with("smiley_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("maga_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("ring_bot_")));
        assert_eq!(
            s.truth
                .families()
                .iter()
                .filter(|f| f.kind == BotKind::ShareReshare)
                .count(),
            2
        );
    }

    #[test]
    fn records_are_time_sorted() {
        let s = ScenarioConfig::jan2020(0.05).build();
        for pair in s.records.windows(2) {
            assert!(pair[0].created_utc <= pair[1].created_utc);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = ScenarioConfig::jan2020(0.05).build();
        let b = ScenarioConfig::jan2020(0.05).build();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn scale_controls_organic_volume() {
        // botnet intensity is fixed by design; only the platform grows
        let small = ScenarioConfig::jan2020(0.2).build();
        let large = ScenarioConfig::jan2020(0.8).build();
        let organic = |s: &Scenario| {
            s.records
                .iter()
                .filter(|r| r.author.starts_with("user"))
                .count()
        };
        assert!(organic(&large) > organic(&small) * 3);
        let bots = |s: &Scenario| {
            s.records
                .iter()
                .filter(|r| r.author.starts_with("stream_bot_"))
                .count()
        };
        // reshare activity is scale-independent up to participation noise
        let (b_small, b_large) = (bots(&small) as f64, bots(&large) as f64);
        assert!((b_small - b_large).abs() / b_large < 0.2);
    }

    #[test]
    fn every_preset_resolves_and_builds() {
        for name in ScenarioConfig::PRESETS {
            let cfg = ScenarioConfig::preset(name, 0.05).expect("known preset");
            assert_eq!(cfg.name, name);
            let s = cfg.build();
            assert!(!s.is_empty(), "{name} generated nothing");
        }
        assert!(ScenarioConfig::preset("nope", 1.0).is_none());
    }

    #[test]
    fn adversarial_presets_plant_their_family() {
        let cases = [
            ("adv_jitter", "jitter", "jitter_bot_0"),
            ("adv_slow_drip", "slow_drip", "drip_bot_0"),
            ("adv_churn", "churn", "churn_bot_0"),
            ("adv_mimicry", "mimicry", "mimic_bot_0"),
        ];
        for (preset, family, member) in cases {
            let s = ScenarioConfig::preset(preset, 0.05).unwrap().build();
            let fam = s.truth.family_of(member).unwrap_or_else(|| {
                panic!("{preset}: {member} missing from truth");
            });
            assert_eq!(fam.name, family);
            // exactly one coordinated family + platform roles
            assert_eq!(s.truth.families().len(), 2, "{preset}");
            assert!(s.records.iter().any(|r| r.author.starts_with("user")));
        }
    }

    #[test]
    fn churn_scenario_truth_resolves_rotated_handles() {
        let s = ScenarioConfig::adv_churn(0.05).build();
        let authors: std::collections::HashSet<&str> =
            s.records.iter().map(|r| r.author.as_str()).collect();
        assert!(authors.contains("churn_bot_0"));
        assert!(authors.contains("churn_bot_0_v2"));
        assert_eq!(s.truth.family_of("churn_bot_0_v2").unwrap().name, "churn");
        assert!(s.truth.same_coordinated_family([
            "churn_bot_0_v2",
            "churn_bot_1",
            "churn_bot_2_v2"
        ]));
    }

    #[test]
    fn dataset_roundtrip() {
        let s = ScenarioConfig::oct2016(0.05).build();
        let ds = s.dataset();
        assert_eq!(ds.len(), s.len());
        assert!(!ds.authors.is_empty());
    }
}
