//! Month-scale scenario presets mirroring the paper's two analyses.
//!
//! A scenario merges organic traffic with any subset of botnet injectors and
//! returns the time-sorted records plus the ground truth. Two presets:
//!
//! * [`ScenarioConfig::jan2020`] — the January 2020 cast: GPT-2 generation
//!   subreddit, MLB-restream share–reshare ring, the smiley reply-bot trio
//!   (the figure-4 outlier), AutoModerator/`[deleted]`, and organic bulk;
//! * [`ScenarioConfig::oct2016`] — October 2016: a smaller network with two
//!   share–reshare rings (one political amplifier, one link ring) and **no**
//!   GPT-2 (it did not exist) and no smiley trio — which is why the paper's
//!   Figure 6 lacks the second artifact visible in Figure 4.
//!
//! The `scale` knob multiplies entity counts so benches can sweep sizes; the
//! default `1.0` runs the whole pipeline in seconds on a laptop while keeping
//! every structural relationship (who wins, what dominates, where the outliers
//! sit) intact.

use coordination_core::records::{CommentRecord, Dataset};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::bots::gpt2::{self, Gpt2Config};
use crate::bots::helpful::{self, HelpfulConfig};
use crate::bots::reply_trigger::{self, ReplyTriggerConfig};
use crate::bots::reshare::{self, ReshareConfig};
use crate::bots::slow_burn::{self, SlowBurnConfig};
use crate::organic::OrganicConfig;
use crate::truth::{BotFamily, BotKind, GroundTruth};

/// Full configuration of one generated month.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Scenario label (propagated into reports).
    pub name: String,
    /// RNG seed; everything is deterministic given this.
    pub seed: u64,
    /// The organic baseline.
    pub organic: OrganicConfig,
    /// Optional GPT-2-style network.
    pub gpt2: Option<Gpt2Config>,
    /// Share–reshare networks (each becomes its own family), with labels.
    pub reshare: Vec<(String, ReshareConfig)>,
    /// Optional reply-trigger bots over the organic stream.
    pub reply_trigger: Option<ReplyTriggerConfig>,
    /// Optional slow-burn network (minute-scale responses; only long windows
    /// catch it — the window-study payoff).
    pub slow_burn: Option<SlowBurnConfig>,
    /// Optional platform-role accounts.
    pub helpful: Option<HelpfulConfig>,
}

fn scaled(base: usize, scale: f64, min: usize) -> usize {
    ((base as f64 * scale) as usize).max(min)
}

impl ScenarioConfig {
    /// The January 2020 preset at the given scale (1.0 ≈ 75k comments).
    pub fn jan2020(scale: f64) -> Self {
        ScenarioConfig {
            name: "jan2020".to_string(),
            seed: 0x0020_2001,
            organic: OrganicConfig {
                n_users: scaled(5_000, scale, 50),
                n_pages: scaled(4_000, scale, 40),
                n_comments: scaled(60_000, scale, 500),
                n_subreddits: scaled(40, scale, 5),
                affinity: 0.8,
                ..Default::default()
            },
            // Botnet parameters deliberately do NOT scale: a network's
            // per-pair weights are set by its own event cadence (games
            // restreamed, pages generated), not by how big the rest of the
            // platform is. Scaling them would shift the weight bands the
            // paper reports (25–33 for GPT-2, 27–91 for the restream ring).
            gpt2: Some(Gpt2Config::default()),
            reshare: vec![(
                "mlb_restream".to_string(),
                ReshareConfig {
                    n_members: 8,
                    n_triggers: 60,
                    ..Default::default()
                },
            )],
            reply_trigger: Some(ReplyTriggerConfig::default()),
            slow_burn: None,
            helpful: Some(HelpfulConfig::default()),
        }
    }

    /// The October 2016 preset at the given scale (smaller month, no GPT-2,
    /// no smiley trio, one extra political amplification ring).
    pub fn oct2016(scale: f64) -> Self {
        ScenarioConfig {
            name: "oct2016".to_string(),
            seed: 0x0020_1610,
            organic: OrganicConfig {
                // denser than jan2020 per user: fewer accounts, chattier
                // threads, so the organic cloud crosses the figure cutoff at
                // the 10-minute and 1-hour windows like the paper's Figures 7–10
                n_users: scaled(1_200, scale, 40),
                n_pages: scaled(2_000, scale, 30),
                n_comments: scaled(35_000, scale, 400),
                burst_prob: 0.6,
                n_subreddits: scaled(25, scale, 4),
                affinity: 0.8,
                ..Default::default()
            },
            gpt2: None,
            reshare: vec![
                (
                    "election_amplifier".to_string(),
                    ReshareConfig {
                        n_members: 6,
                        n_triggers: 50,
                        participation: 0.8,
                        name_prefix: "maga_bot_".to_string(),
                        ..Default::default()
                    },
                ),
                (
                    "link_ring".to_string(),
                    ReshareConfig {
                        n_members: 5,
                        n_triggers: 40,
                        participation: 0.75,
                        name_prefix: "ring_bot_".to_string(),
                        ..Default::default()
                    },
                ),
            ],
            reply_trigger: None,
            // a curation ring responding on the minute scale: invisible to
            // the (0, 60s) hunt, surfaced by the 10-minute window (§2.2's
            // argument for window targeting)
            slow_burn: Some(SlowBurnConfig::default()),
            helpful: Some(HelpfulConfig::default()),
        }
    }

    /// Generate the scenario.
    pub fn build(&self) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut truth = GroundTruth::new();
        let mut records = crate::organic::generate(&self.organic, &mut rng);

        if let Some(cfg) = &self.gpt2 {
            let inj = gpt2::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "gpt2".to_string(),
                members: inj.members,
                kind: BotKind::Gpt2,
            });
            records.extend(inj.records);
        }
        for (label, cfg) in &self.reshare {
            let inj = reshare::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: label.clone(),
                members: inj.members,
                kind: BotKind::ShareReshare,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.slow_burn {
            let inj = slow_burn::generate(cfg, &mut rng);
            truth.add_family(BotFamily {
                name: "slow_burn".to_string(),
                members: inj.members,
                kind: BotKind::SlowBurn,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.reply_trigger {
            // reply bots patrol the organic stream only (platform-wide sweep)
            let organic_only: Vec<CommentRecord> = records
                .iter()
                .filter(|r| r.link_id.starts_with(&self.organic.page_prefix))
                .cloned()
                .collect();
            let inj = reply_trigger::generate(cfg, &organic_only, &mut rng);
            truth.add_family(BotFamily {
                name: "reply_trigger".to_string(),
                members: inj.members,
                kind: BotKind::ReplyTrigger,
            });
            records.extend(inj.records);
        }
        if let Some(cfg) = &self.helpful {
            let base: Vec<CommentRecord> = records.clone();
            let extra = helpful::generate(cfg, &base, &mut rng);
            truth.add_family(BotFamily {
                name: "platform_roles".to_string(),
                members: vec!["AutoModerator".to_string(), "[deleted]".to_string()],
                kind: BotKind::Helpful,
            });
            records.extend(extra);
        }

        records.sort_by(|a, b| {
            (a.created_utc, &a.author, &a.link_id).cmp(&(b.created_utc, &b.author, &b.link_id))
        });
        Scenario {
            name: self.name.clone(),
            records,
            truth,
        }
    }
}

/// A generated month: records in timestamp order plus ground truth.
pub struct Scenario {
    /// Scenario label.
    pub name: String,
    /// All comments, sorted by `(created_utc, author, link_id)`.
    pub records: Vec<CommentRecord>,
    /// Which accounts coordinate, and how.
    pub truth: GroundTruth,
}

impl Scenario {
    /// Intern into a [`Dataset`] ready for the pipeline.
    pub fn dataset(&self) -> Dataset {
        Dataset::from_records(self.records.iter().cloned())
    }

    /// Total comments.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the scenario has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jan2020_contains_every_cast_member() {
        let s = ScenarioConfig::jan2020(0.1).build();
        assert!(!s.is_empty());
        let authors: std::collections::HashSet<&str> =
            s.records.iter().map(|r| r.author.as_str()).collect();
        assert!(authors.iter().any(|a| a.starts_with("gpt2_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("stream_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("smiley_bot_")));
        assert!(authors.contains("AutoModerator"));
        assert!(authors.iter().any(|a| a.starts_with("user")));
        // ground truth covers the cast
        assert_eq!(s.truth.families().len(), 4);
        assert!(s.truth.is_bot("smiley_bot_0"));
    }

    #[test]
    fn oct2016_lacks_gpt2_and_smiley() {
        let s = ScenarioConfig::oct2016(0.1).build();
        let authors: std::collections::HashSet<&str> =
            s.records.iter().map(|r| r.author.as_str()).collect();
        assert!(!authors.iter().any(|a| a.starts_with("gpt2_bot_")));
        assert!(!authors.iter().any(|a| a.starts_with("smiley_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("maga_bot_")));
        assert!(authors.iter().any(|a| a.starts_with("ring_bot_")));
        assert_eq!(
            s.truth
                .families()
                .iter()
                .filter(|f| f.kind == BotKind::ShareReshare)
                .count(),
            2
        );
    }

    #[test]
    fn records_are_time_sorted() {
        let s = ScenarioConfig::jan2020(0.05).build();
        for pair in s.records.windows(2) {
            assert!(pair[0].created_utc <= pair[1].created_utc);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = ScenarioConfig::jan2020(0.05).build();
        let b = ScenarioConfig::jan2020(0.05).build();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn scale_controls_organic_volume() {
        // botnet intensity is fixed by design; only the platform grows
        let small = ScenarioConfig::jan2020(0.2).build();
        let large = ScenarioConfig::jan2020(0.8).build();
        let organic = |s: &Scenario| {
            s.records
                .iter()
                .filter(|r| r.author.starts_with("user"))
                .count()
        };
        assert!(organic(&large) > organic(&small) * 3);
        let bots = |s: &Scenario| {
            s.records
                .iter()
                .filter(|r| r.author.starts_with("stream_bot_"))
                .count()
        };
        // reshare activity is scale-independent up to participation noise
        let (b_small, b_large) = (bots(&small) as f64, bots(&large) as f64);
        assert!((b_small - b_large).abs() / b_large < 0.2);
    }

    #[test]
    fn dataset_roundtrip() {
        let s = ScenarioConfig::oct2016(0.05).build();
        let ds = s.dataset();
        assert_eq!(ds.len(), s.len());
        assert!(!ds.authors.is_empty());
    }
}
