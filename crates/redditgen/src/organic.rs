//! Organic (human) comment traffic.
//!
//! The baseline model layers the regularities of real Reddit months:
//!
//! * **page popularity is Zipf** — a few submissions absorb most comments;
//! * **user activity is log-normal** — most accounts comment a handful of
//!   times, a heavy tail comments constantly;
//! * **comment arrival decays with page age** — exponential delay after the
//!   page's creation (threads are hot for hours, not weeks);
//! * **a diurnal cycle** modulates when comments land.
//!
//! Crucially, humans rarely produce the projection's signature: two specific
//! accounts landing within the same short window on *many distinct pages*.
//! Organic traffic therefore yields a CI graph full of weight-1/2 edges —
//! exactly the haystack the paper describes.

use coordination_core::records::CommentRecord;
use rand::Rng;

use crate::dist::{exponential, LogNormal, WeightedIndex, Zipf};

/// Parameters for an organic month.
#[derive(Clone, Debug)]
pub struct OrganicConfig {
    /// Distinct human accounts.
    pub n_users: usize,
    /// Distinct pages (submissions) created during the month.
    pub n_pages: usize,
    /// Total comments to generate.
    pub n_comments: usize,
    /// Month start timestamp (epoch seconds).
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Zipf exponent for page popularity (≈1.0–1.3 fits Reddit).
    pub page_zipf_s: f64,
    /// Log-space σ of user activity (≈1.2 gives a realistic heavy tail).
    pub user_sigma: f64,
    /// Mean comment delay after page creation, seconds (page "hotness").
    pub mean_page_delay: f64,
    /// Probability each comment draws a quick conversational reply (and each
    /// reply another, geometrically) — threads are dialogues, and this is what
    /// puts *organic* pairs inside short projection windows.
    pub burst_prob: f64,
    /// Delay of a conversational reply after its parent, seconds.
    pub burst_delay: std::ops::Range<i64>,
    /// Number of subreddits pages are partitioned into. `1` disables
    /// community structure (every page in one pool).
    pub n_subreddits: usize,
    /// Probability a user's comment lands in one of their home subreddits
    /// (each user gets two homes); the rest go anywhere. Community affinity
    /// is what clusters organic co-occurrence in real Reddit data.
    pub affinity: f64,
    /// Prefix for generated user names.
    pub user_prefix: String,
    /// Prefix for generated page names.
    pub page_prefix: String,
}

impl Default for OrganicConfig {
    fn default() -> Self {
        OrganicConfig {
            n_users: 2_000,
            n_pages: 1_500,
            n_comments: 20_000,
            t0: 0,
            span: crate::MONTH_SECS,
            page_zipf_s: 1.05,
            user_sigma: 1.2,
            mean_page_delay: 4.0 * 3600.0,
            burst_prob: 0.45,
            burst_delay: 15..240,
            n_subreddits: 1,
            affinity: 0.8,
            user_prefix: "user".to_string(),
            page_prefix: "t3_org".to_string(),
        }
    }
}

/// The diurnal acceptance probability at timestamp `ts` for a cycle anchored
/// at `t0`: activity peaks mid-cycle and troughs at "night", never dropping
/// below 0.1. Shared by organic traffic and by any injector that mimics it
/// (see [`crate::bots::mimicry`]) — an adversary shaping its activity on this
/// exact curve is indistinguishable from humans by rhythm alone.
pub fn diurnal_accept(ts: i64, t0: i64) -> f64 {
    let phase = ((ts - t0) % 86_400) as f64 / 86_400.0 * std::f64::consts::TAU;
    0.5 * (1.0 + phase.sin()) * 0.9 + 0.1
}

/// Generate one organic month. Returned records are in generation order
/// (callers sort the merged scenario by time).
pub fn generate<R: Rng + ?Sized>(cfg: &OrganicConfig, rng: &mut R) -> Vec<CommentRecord> {
    assert!(cfg.n_users > 0 && cfg.n_pages > 0, "need users and pages");
    assert!(cfg.span > 0, "month span must be positive");

    assert!(cfg.n_subreddits > 0, "need at least one subreddit");
    assert!(
        (0.0..=1.0).contains(&cfg.affinity),
        "affinity is a probability"
    );

    // Page creation times: uniform over the month (hot pages early or late).
    let page_birth: Vec<i64> = (0..cfg.n_pages)
        .map(|_| cfg.t0 + rng.gen_range(0..cfg.span))
        .collect();

    // Community structure: pages are dealt to subreddits with Zipf-skewed
    // subreddit sizes; each subreddit gets its own Zipf over its pages.
    let nsubs = cfg.n_subreddits.min(cfg.n_pages);
    let sub_pop = Zipf::new(nsubs, 1.0);
    let mut sub_pages: Vec<Vec<usize>> = vec![Vec::new(); nsubs];
    for page in 0..cfg.n_pages {
        sub_pages[sub_pop.sample(rng)].push(page);
    }
    // guarantee non-empty subreddits (tiny tails can come up empty)
    for s in 0..nsubs {
        if sub_pages[s].is_empty() {
            let donor = (0..nsubs)
                .max_by_key(|&d| sub_pages[d].len())
                .expect("nonempty");
            let page = sub_pages[donor].pop().expect("donor has pages");
            sub_pages[s].push(page);
        }
    }
    let sub_zipf: Vec<Zipf> = sub_pages
        .iter()
        .map(|ps| Zipf::new(ps.len(), cfg.page_zipf_s))
        .collect();

    // User activity weights and home subreddits.
    let act = LogNormal::new(0.0, cfg.user_sigma);
    let weights: Vec<f64> = (0..cfg.n_users).map(|_| act.sample(rng)).collect();
    let user_pick = WeightedIndex::new(&weights);
    let homes: Vec<[usize; 2]> = (0..cfg.n_users)
        .map(|_| [sub_pop.sample(rng), sub_pop.sample(rng)])
        .collect();

    let mut out = Vec::with_capacity(cfg.n_comments);
    while out.len() < cfg.n_comments {
        let user = user_pick.sample(rng);
        let sub = if nsubs == 1 {
            0
        } else if rng.gen_bool(cfg.affinity) {
            homes[user][rng.gen_range(0..2usize)]
        } else {
            sub_pop.sample(rng)
        };
        let page_sub = sub;
        let page = sub_pages[sub][sub_zipf[sub].sample(rng)];
        let delay = exponential(rng, cfg.mean_page_delay) as i64;
        let ts = page_birth[page] + delay;
        if ts >= cfg.t0 + cfg.span {
            continue; // page went cold past month end; resample
        }
        if rng.gen::<f64>() > diurnal_accept(ts, cfg.t0) {
            continue;
        }
        // page ids carry the subreddit (as pushshift's `subreddit` field
        // would); the pipeline treats them as opaque strings
        let page_name = format!("{}{}_s{}", cfg.page_prefix, page, page_sub);
        out.push(CommentRecord::new(
            format!("{}{}", cfg.user_prefix, user),
            &page_name,
            ts,
        ));
        // conversational burst: quick replies chain geometrically
        let mut reply_ts = ts;
        while out.len() < cfg.n_comments && cfg.burst_prob > 0.0 && rng.gen_bool(cfg.burst_prob) {
            reply_ts += rng.gen_range(cfg.burst_delay.clone());
            if reply_ts >= cfg.t0 + cfg.span {
                break;
            }
            let replier = user_pick.sample(rng);
            out.push(CommentRecord::new(
                format!("{}{}", cfg.user_prefix, replier),
                &page_name,
                reply_ts,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashMap;

    fn gen(seed: u64, cfg: &OrganicConfig) -> Vec<CommentRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    #[test]
    fn produces_requested_volume_within_month() {
        let cfg = OrganicConfig {
            n_comments: 5_000,
            ..Default::default()
        };
        let recs = gen(1, &cfg);
        assert_eq!(recs.len(), 5_000);
        for r in &recs {
            assert!(r.created_utc >= cfg.t0);
            assert!(r.created_utc < cfg.t0 + cfg.span);
        }
    }

    #[test]
    fn page_popularity_is_heavy_tailed() {
        let cfg = OrganicConfig {
            n_comments: 10_000,
            ..Default::default()
        };
        let recs = gen(2, &cfg);
        let mut per_page: HashMap<&str, u64> = HashMap::new();
        for r in &recs {
            *per_page.entry(r.link_id.as_str()).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = per_page.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        // top page should dwarf the median page
        let median = counts[counts.len() / 2];
        assert!(counts[0] >= median * 5, "top {} median {median}", counts[0]);
    }

    #[test]
    fn user_activity_is_heavy_tailed() {
        let cfg = OrganicConfig {
            n_comments: 10_000,
            ..Default::default()
        };
        let recs = gen(3, &cfg);
        let mut per_user: HashMap<&str, u64> = HashMap::new();
        for r in &recs {
            *per_user.entry(r.author.as_str()).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = per_user.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] >= 20, "most active user only {}", counts[0]);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = OrganicConfig {
            n_comments: 1_000,
            ..Default::default()
        };
        assert_eq!(gen(7, &cfg), gen(7, &cfg));
        assert_ne!(gen(7, &cfg), gen(8, &cfg));
    }

    /// Subreddit of a generated page id (`..._s<sub>` suffix).
    fn sub_of(link_id: &str) -> &str {
        link_id.rsplit("_s").next().expect("suffix present")
    }

    #[test]
    fn community_affinity_concentrates_users_in_home_subs() {
        let base = OrganicConfig {
            n_users: 200,
            n_pages: 1_000,
            n_comments: 8_000,
            n_subreddits: 20,
            ..Default::default()
        };
        // mean fraction of a user's comments inside their two most-visited
        // subreddits (users with ≥ 10 comments)
        let homeshare = |affinity: f64, seed: u64| -> f64 {
            let cfg = OrganicConfig {
                affinity,
                ..base.clone()
            };
            let recs = gen(seed, &cfg);
            let mut per_user: HashMap<&str, HashMap<&str, u64>> = HashMap::new();
            for r in &recs {
                *per_user
                    .entry(r.author.as_str())
                    .or_default()
                    .entry(sub_of(&r.link_id))
                    .or_insert(0) += 1;
            }
            let mut shares = Vec::new();
            for subs in per_user.values() {
                let total: u64 = subs.values().sum();
                if total < 10 {
                    continue;
                }
                let mut counts: Vec<u64> = subs.values().copied().collect();
                counts.sort_unstable_by(|a, b| b.cmp(a));
                let top2: u64 = counts.iter().take(2).sum();
                shares.push(top2 as f64 / total as f64);
            }
            shares.iter().sum::<f64>() / shares.len() as f64
        };
        let strong = homeshare(0.95, 9);
        let none = homeshare(0.0, 9);
        assert!(
            strong > none + 0.15,
            "affinity should concentrate traffic: {strong:.3} vs {none:.3}"
        );
        // conversational-burst replies land wherever the parent comment is,
        // regardless of the replier's homes, which caps the share below the
        // raw 95% affinity
        assert!(
            strong > 0.6,
            "95% affinity keeps most comments home: {strong:.3}"
        );
    }

    #[test]
    fn every_subreddit_gets_pages() {
        let cfg = OrganicConfig {
            n_users: 50,
            n_pages: 60,
            n_comments: 2_000,
            n_subreddits: 50,
            ..Default::default()
        };
        // would panic inside Zipf::new(0, ..) if a subreddit were empty
        let recs = gen(10, &cfg);
        assert_eq!(recs.len(), 2_000);
    }

    #[test]
    fn organic_traffic_projects_to_light_edges() {
        // the haystack property: no organic pair should rack up a CI weight
        // anywhere near a coordinated one
        use coordination_core::records::Dataset;
        use coordination_core::{project, Window};
        let cfg = OrganicConfig {
            n_users: 300,
            n_pages: 500,
            n_comments: 6_000,
            ..Default::default()
        };
        let ds = Dataset::from_records(gen(4, &cfg));
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        assert!(
            ci.max_weight() <= 10,
            "organic max CI weight {} suspiciously high — coordinated nets sit at 20+",
            ci.max_weight()
        );
    }
}
