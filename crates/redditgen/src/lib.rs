//! # redditgen — synthetic Reddit comment streams with ground-truth botnets
//!
//! The paper's data is the pushshift.io Reddit archive (January 2020: 138
//! million comments; October 2016), which is unavailable offline and terabyte
//! scale. This crate generates scaled-down months of comment traffic whose
//! *mechanisms* match what the paper observed, so the pipeline's behaviour on
//! them has the same shape:
//!
//! * [`organic`] — baseline human traffic: Zipf-popular pages, lognormal user
//!   activity, page-age-decaying comment arrival with a diurnal cycle;
//! * [`bots::gpt2`] — the GPT-2 text-generation subreddit of paper §3.1.1:
//!   bot-only pages, self-threads (invisible to projection), and mixed pages
//!   commented by random bot subsets (a sparse CI component);
//! * [`bots::reshare`] — the restream link-sharing network of §3.1.2: a
//!   trigger post followed by near-immediate responses from most members
//!   (a dense clique with high edge weights);
//! * [`bots::reply_trigger`] — the ":)"-for-":(" reply bots of §3.1.4 whose
//!   triplet dwarfs everything else (the (4460, 5516, 13355) outlier);
//! * [`bots::helpful`] — AutoModerator and `[deleted]`, which the paper
//!   excludes before projection;
//! * evasion injectors — adversaries the paper never faced: [`bots::jitter`]
//!   (bursts straddling the (δ1, δ2) edge), [`bots::slow_drip`] (staying
//!   below the min-weight cutoff), [`bots::churn`] (handle rotation, scored
//!   through the ground-truth alias map), [`bots::mimicry`] (diurnal-shaped
//!   activity on the organic time curve), and [`bots::camouflage`] (decoy
//!   comments diluting the normalized scores);
//! * [`scenario`] — month presets mirroring the January 2020 and October 2016
//!   analyses, at a configurable scale;
//! * [`truth`] — ground-truth labels, enabling the precision/recall reporting
//!   the paper could not do on unlabeled data.
//!
//! All generation is deterministic given a seed.

pub mod bots;
pub mod dist;
pub mod organic;
pub mod scenario;
pub mod truth;

pub use scenario::{Scenario, ScenarioConfig};
pub use truth::GroundTruth;

/// One month of seconds — every preset spans `[t0, t0 + MONTH_SECS)`.
pub const MONTH_SECS: i64 = 30 * 24 * 3600;
