//! Organic mimicry: bot activity shaped on the human diurnal curve.
//!
//! Naive injectors post uniformly around the clock — a rhythm no human
//! population produces, and an easy tell for activity-profile detectors. This
//! network schedules everything by rejection-sampling against the *same*
//! [`crate::organic::diurnal_accept`] curve the organic generator uses, so
//! per-hour activity histograms match the human baseline exactly. On top of
//! the gpt2-style coordinated pages it sprinkles diurnal solo comments on a
//! wide filler-page pool: those inflate every member's page count, diluting
//! the normalized `C`/`T` scores (the camouflage effect) while the timing
//! side of the disguise defeats rhythm-based triage. Raw `min w'`/`w_xyz`
//! still see the coordination — pile-ons must stay synchronized to work.

use coordination_core::records::CommentRecord;
use rand::seq::SliceRandom;
use rand::Rng;

use super::gpt2::Injection;
use crate::organic::diurnal_accept;

/// Configuration of a diurnal-camouflaged coordinated network.
#[derive(Clone, Debug)]
pub struct MimicryConfig {
    /// Network size.
    pub n_bots: usize,
    /// Coordinated pages the network creates during the month.
    pub n_pages: usize,
    /// How many bots (beyond the creator) pile onto a page.
    pub participants: std::ops::Range<usize>,
    /// Seconds between consecutive comments on a coordinated page.
    pub comment_gap: std::ops::Range<i64>,
    /// Diurnal solo comments per bot, as a multiple of its coordinated
    /// comment count (the `C`/`T` dilution knob).
    pub solo_ratio: f64,
    /// Size of the filler-page pool solo comments land on.
    pub solo_pages: usize,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for MimicryConfig {
    fn default() -> Self {
        MimicryConfig {
            n_bots: 10,
            n_pages: 80,
            participants: 3..7,
            comment_gap: 5..50,
            solo_ratio: 2.0,
            // wide pool: solo comments rarely collide, so they dilute the
            // normalized scores without adding shared pages
            solo_pages: 600,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "mimic_bot_".to_string(),
        }
    }
}

/// Sample a timestamp whose acceptance follows the organic diurnal curve.
fn diurnal_ts<R: Rng + ?Sized>(rng: &mut R, t0: i64, span: i64) -> i64 {
    loop {
        let ts = t0 + rng.gen_range(0..span.max(1));
        if rng.gen::<f64>() <= diurnal_accept(ts, t0) {
            return ts;
        }
    }
}

/// Generate the month's diurnal-shaped coordinated + solo activity.
pub fn generate<R: Rng + ?Sized>(cfg: &MimicryConfig, rng: &mut R) -> Injection {
    assert!(cfg.n_bots >= 2, "need at least two bots");
    assert!(!cfg.comment_gap.is_empty() && cfg.comment_gap.start >= 0);
    assert!(!cfg.participants.is_empty());
    assert!(cfg.solo_ratio >= 0.0);
    assert!(cfg.solo_pages > 0, "need filler pages for solo comments");
    let members: Vec<String> = (0..cfg.n_bots)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let idx: Vec<usize> = (0..cfg.n_bots).collect();
    let mut records = Vec::new();

    for page in 0..cfg.n_pages {
        let page_id = format!("t3_{}page{page}", cfg.name_prefix);
        // the pile-on *starts* on the human clock; the burst itself must stay
        // tight or the coordination stops working
        let birth = diurnal_ts(rng, cfg.t0, cfg.span);
        let creator = rng.gen_range(0..cfg.n_bots);
        records.push(CommentRecord::new(&members[creator], &page_id, birth));
        let mut joiners = idx.clone();
        joiners.retain(|&i| i != creator);
        joiners.shuffle(rng);
        let k = rng
            .gen_range(cfg.participants.clone())
            .min(cfg.n_bots - 1)
            .max(1);
        let mut ts = birth;
        for &j in joiners.iter().take(k) {
            ts += rng.gen_range(cfg.comment_gap.clone());
            records.push(CommentRecord::new(&members[j], &page_id, ts));
        }
    }

    // solo filler, also on the human clock
    let mut per_bot = vec![0usize; cfg.n_bots];
    for r in &records {
        let i: usize = r.author[cfg.name_prefix.len()..].parse().expect("suffix");
        per_bot[i] += 1;
    }
    for (i, m) in members.iter().enumerate() {
        let solos = (per_bot[i] as f64 * cfg.solo_ratio).round() as usize;
        for _ in 0..solos {
            let page = rng.gen_range(0..cfg.solo_pages);
            records.push(CommentRecord::new(
                m,
                format!("t3_{}solo{page}", cfg.name_prefix),
                diurnal_ts(rng, cfg.t0, cfg.span),
            ));
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64, cfg: &MimicryConfig) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    /// Ratio of activity in the curve's peak half-cycle to its trough half.
    fn day_night_ratio(records: &[CommentRecord]) -> f64 {
        let (mut day, mut night) = (0usize, 0usize);
        for r in records {
            let phase = (r.created_utc % 86_400) as f64 / 86_400.0;
            if phase < 0.5 {
                day += 1; // sin > 0: the curve's peak half
            } else {
                night += 1;
            }
        }
        day as f64 / night.max(1) as f64
    }

    #[test]
    fn activity_matches_the_organic_rhythm() {
        let inj = inject(1, &MimicryConfig::default());
        let bots = day_night_ratio(&inj.records);
        // ∫accept over the peak half ≈ 3.2× the trough half; bursts and
        // comment gaps smear a little
        assert!(
            bots > 2.0,
            "bot activity should be diurnal: ratio {bots:.2}"
        );

        // and it matches what organic traffic actually does
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let organic = crate::organic::generate(
            &crate::organic::OrganicConfig {
                n_comments: 5_000,
                mean_page_delay: 600.0, // tight decay isolates the diurnal term
                burst_prob: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        let humans = day_night_ratio(&organic);
        assert!(
            (bots / humans - 1.0).abs() < 0.5,
            "rhythms should be indistinguishable: bots {bots:.2} humans {humans:.2}"
        );
    }

    #[test]
    fn raw_weights_still_expose_the_coordination() {
        let inj = inject(3, &MimicryConfig::default());
        let ds = Dataset::from_records(inj.records);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        assert!(
            ci.max_weight() >= 12,
            "pile-ons stay synchronized: max {}",
            ci.max_weight()
        );
    }

    #[test]
    fn solo_filler_dilutes_the_normalized_score() {
        let c_of = |solo_ratio: f64| {
            let inj = inject(
                4,
                &MimicryConfig {
                    solo_ratio,
                    ..Default::default()
                },
            );
            let ds = Dataset::from_records(inj.records);
            let btm = ds.btm();
            let id = |n: &str| AuthorId(ds.authors.get(n).unwrap());
            let (a, b, c) = (id("mimic_bot_0"), id("mimic_bot_1"), id("mimic_bot_2"));
            let w_xyz = coordination_core::hypergraph::hyperedge_weight(&btm, a, b, c);
            coordination_core::metrics::c_score(
                w_xyz,
                btm.page_count(a),
                btm.page_count(b),
                btm.page_count(c),
            )
        };
        let (clean, hidden) = (c_of(0.0), c_of(2.0));
        assert!(
            hidden < clean * 0.55,
            "solo filler should dilute C: {clean:.3} -> {hidden:.3}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MimicryConfig::default();
        assert_eq!(inject(9, &cfg).records, inject(9, &cfg).records);
    }
}
