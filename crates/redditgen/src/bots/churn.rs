//! Account churn: the network rotates handles mid-month.
//!
//! Bans and detection pressure make real botnets cycle accounts. The
//! mechanics here are a share–reshare clique (see [`super::reshare`]) that
//! abandons every handle at a rotation point and continues under fresh ones:
//! each pairwise edge's month of weight is split across two handle pairs,
//! halving every `w'` and fragmenting the CI component into two weaker
//! cliques. Detection quality can only be scored if the ground truth knows
//! the rotation — [`ChurnInjection::aliases`] maps each post-rotation handle
//! back to its canonical account, and [`crate::truth::GroundTruth::add_alias`]
//! resolves flagged triplets through it so both eras score as one family.

use coordination_core::records::CommentRecord;
use rand::Rng;

/// Configuration of a handle-rotating coordinated network.
#[derive(Clone, Debug)]
pub struct ChurnConfig {
    /// Network size (canonical accounts; each gets one rotated handle).
    pub n_members: usize,
    /// Trigger pages over the month.
    pub n_triggers: usize,
    /// Probability each member responds to a trigger.
    pub participation: f64,
    /// Response delay after the trigger, seconds.
    pub response_delay: std::ops::Range<i64>,
    /// Rotation point as a fraction of the span (0.5 = mid-month).
    pub rotate_frac: f64,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            n_members: 8,
            n_triggers: 56,
            participation: 0.85,
            response_delay: 1..45,
            rotate_frac: 0.5,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "churn_bot_".to_string(),
        }
    }
}

/// Output of the churn injector: records, canonical members, and the
/// rotated-handle → canonical-member alias pairs for the ground truth.
pub struct ChurnInjection {
    /// Generated comments (mixed pre- and post-rotation handles).
    pub records: Vec<CommentRecord>,
    /// Canonical account names (the pre-rotation handles).
    pub members: Vec<String>,
    /// `(rotated_handle, canonical_member)` pairs.
    pub aliases: Vec<(String, String)>,
}

/// The rotated handle of a canonical member name.
pub fn rotated_handle(canonical: &str) -> String {
    format!("{canonical}_v2")
}

/// Generate the month's activity with a mid-month handle rotation.
pub fn generate<R: Rng + ?Sized>(cfg: &ChurnConfig, rng: &mut R) -> ChurnInjection {
    assert!(cfg.n_members >= 2, "need at least two members");
    assert!(!cfg.response_delay.is_empty() && cfg.response_delay.start >= 0);
    assert!((0.0..=1.0).contains(&cfg.rotate_frac));
    let members: Vec<String> = (0..cfg.n_members)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let rotate_at = cfg.t0 + ((cfg.span as f64) * cfg.rotate_frac) as i64;
    let handle = |i: usize, ts: i64| -> String {
        if ts < rotate_at {
            members[i].clone()
        } else {
            rotated_handle(&members[i])
        }
    };
    let mut records = Vec::new();
    for trig in 0..cfg.n_triggers {
        let page_id = format!("t3_{}link{trig}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let poster = rng.gen_range(0..cfg.n_members);
        records.push(CommentRecord::new(handle(poster, birth), &page_id, birth));
        for i in 0..cfg.n_members {
            if i == poster || !rng.gen_bool(cfg.participation) {
                continue;
            }
            let ts = birth + rng.gen_range(cfg.response_delay.clone());
            records.push(CommentRecord::new(handle(i, ts), &page_id, ts));
        }
    }
    let aliases = members
        .iter()
        .map(|m| (rotated_handle(m), m.clone()))
        .collect();
    ChurnInjection {
        records,
        members,
        aliases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::{BotFamily, BotKind, GroundTruth};
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64, cfg: &ChurnConfig) -> ChurnInjection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    #[test]
    fn handles_are_era_consistent() {
        let cfg = ChurnConfig::default();
        let inj = inject(1, &cfg);
        let rotate_at = ((cfg.span as f64) * cfg.rotate_frac) as i64;
        for r in &inj.records {
            if r.created_utc < rotate_at {
                assert!(!r.author.ends_with("_v2"), "{} before rotation", r.author);
            } else {
                assert!(r.author.ends_with("_v2"), "{} after rotation", r.author);
            }
        }
        assert_eq!(inj.aliases.len(), cfg.n_members);
    }

    #[test]
    fn rotation_splits_the_edge_weight_across_eras() {
        let churned = inject(2, &ChurnConfig::default());
        // the same network without rotation (rotate past month end)
        let stable = inject(
            2,
            &ChurnConfig {
                rotate_frac: 1.0,
                ..Default::default()
            },
        );
        let weight = |inj: &ChurnInjection, a: &str, b: &str| {
            let ds = Dataset::from_records(inj.records.clone());
            let ci = project::project(&ds.btm(), Window::zero_to_60s());
            match (ds.authors.get(a), ds.authors.get(b)) {
                (Some(x), Some(y)) => ci.weight(AuthorId(x), AuthorId(y)),
                _ => 0,
            }
        };
        let w_full = weight(&stable, "churn_bot_0", "churn_bot_1");
        let w_era1 = weight(&churned, "churn_bot_0", "churn_bot_1");
        let w_era2 = weight(&churned, "churn_bot_0_v2", "churn_bot_1_v2");
        assert!(w_era1 > 0 && w_era2 > 0, "both eras must be active");
        assert!(
            w_era1 < w_full && w_era2 < w_full,
            "each era carries only part of the month: {w_era1}/{w_era2} vs {w_full}"
        );
        // no cross-era edge exists — the handles never overlap in time
        assert_eq!(weight(&churned, "churn_bot_0", "churn_bot_1_v2"), 0);
    }

    #[test]
    fn truth_with_aliases_scores_both_eras_as_one_family() {
        let inj = inject(3, &ChurnConfig::default());
        let mut gt = GroundTruth::new();
        gt.add_family(BotFamily {
            name: "churn".into(),
            members: inj.members.clone(),
            kind: BotKind::Churn,
        });
        for (alias, canonical) in &inj.aliases {
            gt.add_alias(alias.clone(), canonical);
        }
        let eval = gt.evaluate([
            ["churn_bot_0", "churn_bot_1", "churn_bot_2"],
            ["churn_bot_0_v2", "churn_bot_1_v2", "churn_bot_2_v2"],
            ["churn_bot_0", "churn_bot_1_v2", "churn_bot_2"],
        ]);
        assert_eq!(eval.true_positives, 3, "all eras resolve to one family");
        // three logical accounts, not six handles
        assert_eq!(eval.members_flagged, 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ChurnConfig::default();
        assert_eq!(inject(9, &cfg).records, inject(9, &cfg).records);
    }
}
