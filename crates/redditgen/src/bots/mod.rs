//! Botnet injectors — one module per coordination mechanism the paper found.
//!
//! Each injector produces plain [`CommentRecord`]s plus the list of member
//! account names for the ground truth. Injectors know nothing about each
//! other; [`crate::scenario`] merges them with organic traffic.
//!
//! [`CommentRecord`]: coordination_core::records::CommentRecord

pub mod camouflage;
pub mod churn;
pub mod gpt2;
pub mod helpful;
pub mod jitter;
pub mod mimicry;
pub mod reply_trigger;
pub mod reshare;
pub mod slow_burn;
pub mod slow_drip;
