//! The share–reshare network (paper §3.1.2: restream link distribution).
//!
//! One member posts the "trigger" page (a stream link); within seconds, most
//! other members pile on. Because nearly the whole network responds to nearly
//! every trigger, pairwise weights climb with the number of triggers and the
//! CI component is a dense near-clique — the paper found an 8-clique with edge
//! weights 27–91 at a (0, 60s) window.

use coordination_core::records::CommentRecord;
use rand::Rng;

use super::gpt2::Injection;

/// Configuration of a share–reshare network.
#[derive(Clone, Debug)]
pub struct ReshareConfig {
    /// Core members (the paper's main group formed an 8-clique).
    pub n_members: usize,
    /// Trigger pages posted during the month (≈ events, e.g. one per game).
    pub n_triggers: usize,
    /// Probability each member responds to a given trigger.
    pub participation: f64,
    /// Response delay after the trigger, in seconds.
    pub response_delay: std::ops::Range<i64>,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for ReshareConfig {
    fn default() -> Self {
        ReshareConfig {
            n_members: 8,
            n_triggers: 60,
            participation: 0.85,
            response_delay: 1..45,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "stream_bot_".to_string(),
        }
    }
}

/// Generate the month's trigger/response activity.
pub fn generate<R: Rng + ?Sized>(cfg: &ReshareConfig, rng: &mut R) -> Injection {
    assert!(cfg.n_members >= 2, "need at least two members");
    assert!(!cfg.response_delay.is_empty() && cfg.response_delay.start >= 0);
    let members: Vec<String> = (0..cfg.n_members)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let mut records = Vec::new();
    for trig in 0..cfg.n_triggers {
        let page_id = format!("t3_{}link{trig}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let poster = rng.gen_range(0..cfg.n_members);
        records.push(CommentRecord::new(&members[poster], &page_id, birth));
        for (i, m) in members.iter().enumerate() {
            if i == poster || !rng.gen_bool(cfg.participation) {
                continue;
            }
            let ts = birth + rng.gen_range(cfg.response_delay.clone());
            records.push(CommentRecord::new(m, &page_id, ts));
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64, cfg: &ReshareConfig) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    #[test]
    fn responses_land_within_the_delay_window() {
        let inj = inject(1, &ReshareConfig::default());
        let mut per_page: std::collections::HashMap<&str, Vec<i64>> =
            std::collections::HashMap::new();
        for r in &inj.records {
            per_page
                .entry(r.link_id.as_str())
                .or_default()
                .push(r.created_utc);
        }
        for ts in per_page.values_mut() {
            ts.sort_unstable();
            let first = ts[0];
            for &t in &ts[1..] {
                assert!((1..45).contains(&(t - first)), "delay {}", t - first);
            }
        }
    }

    #[test]
    fn ci_component_is_a_dense_heavy_clique() {
        let inj = inject(2, &ReshareConfig::default());
        let ds = Dataset::from_records(inj.records);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        // everyone co-responds to most triggers → near-complete graph with
        // weights scaling like participation² · n_triggers ≈ 43
        let comps = ci.components(25);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 8, "the whole network exceeds the cutoff");
        let wg = ci.threshold(25).to_weighted_graph();
        let sub = tripoll::clique::Subgraph::induce(&wg, &comps[0]);
        assert_eq!(sub.max_clique().len(), 8, "share–reshare yields a clique");
        let (lo, hi) = sub.weight_range().unwrap();
        assert!(
            lo >= 25 && hi <= 60,
            "weights ({lo},{hi}) off the expected scale"
        );
    }

    #[test]
    fn weights_scale_with_trigger_count() {
        let few = inject(
            3,
            &ReshareConfig {
                n_triggers: 20,
                ..Default::default()
            },
        );
        let many = inject(
            3,
            &ReshareConfig {
                n_triggers: 80,
                ..Default::default()
            },
        );
        let w = |inj: Injection| {
            let ds = Dataset::from_records(inj.records);
            let ci = project::project(&ds.btm(), Window::zero_to_60s());
            let a = ds.authors.get("stream_bot_0").unwrap();
            let b = ds.authors.get("stream_bot_1").unwrap();
            ci.weight(AuthorId(a), AuthorId(b))
        };
        assert!(w(many) > w(few) * 2);
    }

    #[test]
    fn partial_participation_thins_the_graph() {
        let inj = inject(
            4,
            &ReshareConfig {
                participation: 0.3,
                ..Default::default()
            },
        );
        let ds = Dataset::from_records(inj.records);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        // pairwise expectation ≈ 0.3² (both respond) · 60 plus poster terms —
        // far below the 0.85 network's weights
        assert!(ci.max_weight() < 25, "max {}", ci.max_weight());
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = ReshareConfig::default();
        assert_eq!(inject(9, &cfg).records, inject(9, &cfg).records);
    }
}
