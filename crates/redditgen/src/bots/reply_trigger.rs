//! Reply-trigger utility bots (paper §3.1.4).
//!
//! The paper's heaviest triangle — edge weights (4460, 5516, 13355) — came
//! from bots that reply ":)" whenever a previous comment contains ":(". Such
//! bots patrol *the entire platform*: they co-occur with each other on
//! thousands of organic pages within seconds, producing CI edge weights
//! orders of magnitude above any human pair, while their normalized scores
//! stay unremarkable (they also visit pages the others miss).
//!
//! The injector takes the organic records as input and adds bot replies on a
//! sampled fraction of pages, with per-bot trigger probabilities — unequal
//! probabilities recreate the strongly asymmetric weights of the paper's
//! outlier triangle.

use coordination_core::records::CommentRecord;
use rand::Rng;

use super::gpt2::Injection;

/// Configuration of the reply-bot trio (or larger set).
#[derive(Clone, Debug)]
pub struct ReplyTriggerConfig {
    /// Per-bot probability of firing on a triggering page. One entry per bot;
    /// unequal values yield the asymmetric weights of the paper's outlier.
    pub fire_probs: Vec<f64>,
    /// Fraction of organic pages containing a trigger (a ":(" somewhere).
    pub trigger_page_prob: f64,
    /// Bot response delay after the triggering comment, seconds.
    pub response_delay: std::ops::Range<i64>,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for ReplyTriggerConfig {
    fn default() -> Self {
        ReplyTriggerConfig {
            // bot 2 fires on nearly every trigger; 0 and 1 are choosier —
            // mirrors the (4460, 5516, 13355) asymmetry
            fire_probs: vec![0.55, 0.65, 0.95],
            trigger_page_prob: 0.5,
            response_delay: 1..8,
            name_prefix: "smiley_bot_".to_string(),
        }
    }
}

/// Add reply-bot activity over the given organic records. Pages are sampled
/// by their first appearance in `organic`; each firing bot replies shortly
/// after the triggering (first) comment.
pub fn generate<R: Rng + ?Sized>(
    cfg: &ReplyTriggerConfig,
    organic: &[CommentRecord],
    rng: &mut R,
) -> Injection {
    assert!(!cfg.fire_probs.is_empty(), "need at least one bot");
    assert!(!cfg.response_delay.is_empty() && cfg.response_delay.start >= 0);
    let members: Vec<String> = (0..cfg.fire_probs.len())
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();

    // first comment per page = the trigger opportunity
    let mut first_seen: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
    for r in organic {
        first_seen
            .entry(r.link_id.as_str())
            .and_modify(|t| *t = (*t).min(r.created_utc))
            .or_insert(r.created_utc);
    }
    let mut pages: Vec<(&str, i64)> = first_seen.into_iter().collect();
    pages.sort_unstable(); // deterministic iteration order

    let mut records = Vec::new();
    for (page, t_first) in pages {
        if !rng.gen_bool(cfg.trigger_page_prob) {
            continue;
        }
        for (i, &p) in cfg.fire_probs.iter().enumerate() {
            if rng.gen_bool(p) {
                let ts = t_first + rng.gen_range(cfg.response_delay.clone());
                records.push(CommentRecord::new(&members[i], page, ts));
            }
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organic::{self, OrganicConfig};
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn organic_month(seed: u64) -> Vec<CommentRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        organic::generate(
            &OrganicConfig {
                n_users: 200,
                n_pages: 800,
                n_comments: 4_000,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn bots_reply_only_on_existing_pages_shortly_after_first_comment() {
        let org = organic_month(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inj = generate(&ReplyTriggerConfig::default(), &org, &mut rng);
        let mut first: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
        for r in &org {
            first
                .entry(r.link_id.as_str())
                .and_modify(|t| *t = (*t).min(r.created_utc))
                .or_insert(r.created_utc);
        }
        assert!(!inj.records.is_empty());
        for r in &inj.records {
            let t0 = first[r.link_id.as_str()];
            assert!((1..8).contains(&(r.created_utc - t0)));
        }
    }

    #[test]
    fn trio_dominates_the_weight_ranking() {
        let org = organic_month(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inj = generate(&ReplyTriggerConfig::default(), &org, &mut rng);
        let mut all = org;
        all.extend(inj.records);
        let ds = Dataset::from_records(all);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        let id = |n: &str| AuthorId(ds.authors.get(n).unwrap());
        let w01 = ci.weight(id("smiley_bot_0"), id("smiley_bot_1"));
        let w02 = ci.weight(id("smiley_bot_0"), id("smiley_bot_2"));
        let w12 = ci.weight(id("smiley_bot_1"), id("smiley_bot_2"));
        // the trio's minimum edge dwarfs every other edge in the graph
        let trio_min = w01.min(w02).min(w12);
        let other_max = ci
            .edges()
            .filter(|&(a, b, _)| {
                let bots = [
                    id("smiley_bot_0").0,
                    id("smiley_bot_1").0,
                    id("smiley_bot_2").0,
                ];
                !(bots.contains(&a) && bots.contains(&b))
            })
            .map(|(_, _, w)| w)
            .max()
            .unwrap_or(0);
        assert!(
            trio_min > other_max * 2,
            "trio min {trio_min} vs other max {other_max}"
        );
        // asymmetry: the eager bot's edges outweigh the choosy pair's edge
        assert!(w02 > w01 && w12 > w01, "({w01}, {w02}, {w12})");
    }

    #[test]
    fn fire_probability_controls_volume() {
        let org = organic_month(5);
        let count = |probs: Vec<f64>, seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            generate(
                &ReplyTriggerConfig {
                    fire_probs: probs,
                    ..Default::default()
                },
                &org,
                &mut rng,
            )
            .records
            .len()
        };
        assert!(count(vec![0.9], 6) > count(vec![0.1], 6) * 3);
    }

    #[test]
    fn deterministic_per_seed() {
        let org = organic_month(7);
        let run = |seed| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            generate(&ReplyTriggerConfig::default(), &org, &mut rng).records
        };
        assert_eq!(run(8), run(8));
    }
}
