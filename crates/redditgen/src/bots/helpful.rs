//! Platform-role accounts: AutoModerator and `[deleted]` (paper §3).
//!
//! AutoModerator greets a large fraction of new pages within seconds of
//! creation — precisely the projection's coordination signature, which is why
//! the paper strips it before projecting. `[deleted]` pools the comments of
//! arbitrarily many vanished accounts, so its co-occurrence pattern is
//! meaningless noise at high volume. Injecting both lets the test suite and
//! benches verify that the exclusion list actually matters.

use coordination_core::records::CommentRecord;
use rand::Rng;

/// Configuration for the platform-role accounts.
#[derive(Clone, Debug)]
pub struct HelpfulConfig {
    /// Fraction of pages AutoModerator greets.
    pub automod_page_prob: f64,
    /// AutoModerator's delay after the page's first comment, seconds.
    pub automod_delay: std::ops::Range<i64>,
    /// Fraction of organic comments that become `[deleted]` duplicates (the
    /// deleted user "shadowing" real traffic).
    pub deleted_rate: f64,
}

impl Default for HelpfulConfig {
    fn default() -> Self {
        HelpfulConfig {
            automod_page_prob: 0.6,
            automod_delay: 0..3,
            deleted_rate: 0.02,
        }
    }
}

/// Generate AutoModerator and `[deleted]` records over the organic stream.
pub fn generate<R: Rng + ?Sized>(
    cfg: &HelpfulConfig,
    organic: &[CommentRecord],
    rng: &mut R,
) -> Vec<CommentRecord> {
    let mut first_seen: std::collections::HashMap<&str, i64> = std::collections::HashMap::new();
    for r in organic {
        first_seen
            .entry(r.link_id.as_str())
            .and_modify(|t| *t = (*t).min(r.created_utc))
            .or_insert(r.created_utc);
    }
    let mut pages: Vec<(&str, i64)> = first_seen.into_iter().collect();
    pages.sort_unstable();

    let mut out = Vec::new();
    for (page, t0) in pages {
        if rng.gen_bool(cfg.automod_page_prob) {
            let ts = t0 + rng.gen_range(cfg.automod_delay.clone());
            out.push(CommentRecord::new("AutoModerator", page, ts));
        }
    }
    for r in organic {
        if rng.gen_bool(cfg.deleted_rate) {
            out.push(CommentRecord::new(
                "[deleted]",
                &r.link_id,
                r.created_utc + 30,
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organic::{self, OrganicConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn organic_month(seed: u64) -> Vec<CommentRecord> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        organic::generate(
            &OrganicConfig {
                n_users: 100,
                n_pages: 300,
                n_comments: 2_000,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn automod_greets_configured_fraction_of_pages() {
        let org = organic_month(1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let extra = generate(&HelpfulConfig::default(), &org, &mut rng);
        let pages: std::collections::HashSet<&str> =
            org.iter().map(|r| r.link_id.as_str()).collect();
        let automod_pages = extra.iter().filter(|r| r.author == "AutoModerator").count() as f64;
        let frac = automod_pages / pages.len() as f64;
        assert!((frac - 0.6).abs() < 0.1, "fraction {frac}");
    }

    #[test]
    fn only_known_role_names_are_produced() {
        let org = organic_month(3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let extra = generate(&HelpfulConfig::default(), &org, &mut rng);
        for r in &extra {
            assert!(r.author == "AutoModerator" || r.author == "[deleted]");
        }
        assert!(extra.iter().any(|r| r.author == "[deleted]"));
    }

    #[test]
    fn exclusion_list_covers_everything_generated() {
        let l = coordination_core::filter::ExclusionList::reddit_defaults();
        let org = organic_month(5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for r in generate(&HelpfulConfig::default(), &org, &mut rng) {
            assert!(l.contains(&r.author), "{} not excluded", r.author);
        }
    }
}
