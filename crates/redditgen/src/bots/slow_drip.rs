//! Slow-drip coordination: stay below the per-window weight cutoff.
//!
//! Where [`super::jitter`] shaves each burst, slow drip rations how often the
//! network bursts at all: most responses to a trigger arrive hours later
//! (useless to any short projection window), and only an occasional
//! `fast_prob` fraction land in seconds. Each pair therefore accumulates CI
//! weight at a rate of roughly `fast_prob²` per trigger — comfortably below
//! the paper's min-weight cutoff even over a whole month — while the
//! *hypergraph* weight `w_xyz` (which counts shared pages regardless of
//! timing) keeps growing with every trigger. The scenario quantifies which
//! score metric survives: validation's `w_xyz`/`C` see the family, the
//! windowed `min w'`/`T` do not.

use coordination_core::records::CommentRecord;
use rand::Rng;

use super::gpt2::Injection;

/// Configuration of a below-the-cutoff coordinated network.
#[derive(Clone, Debug)]
pub struct SlowDripConfig {
    /// Network size.
    pub n_members: usize,
    /// Trigger pages over the month.
    pub n_triggers: usize,
    /// Probability each member responds to a trigger at all.
    pub participation: f64,
    /// Probability a response is fast (window-visible) rather than hours late.
    pub fast_prob: f64,
    /// Fast-response delay, seconds.
    pub fast_delay: std::ops::Range<i64>,
    /// Slow-response delay, seconds (hours — outside any sane window).
    pub slow_delay: std::ops::Range<i64>,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for SlowDripConfig {
    fn default() -> Self {
        SlowDripConfig {
            n_members: 7,
            n_triggers: 60,
            participation: 0.9,
            // pairwise in-window weight ≈ n_triggers · fast_prob² plus the
            // poster's always-fast contribution ≈ 5, under the paper's
            // cutoff of 10; w_xyz ≈ 40+ regardless
            fast_prob: 0.2,
            fast_delay: 1..45,
            slow_delay: 7_200..72_000,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "drip_bot_".to_string(),
        }
    }
}

/// Generate the month's rationed trigger/response activity.
pub fn generate<R: Rng + ?Sized>(cfg: &SlowDripConfig, rng: &mut R) -> Injection {
    assert!(cfg.n_members >= 2, "need at least two members");
    assert!(!cfg.fast_delay.is_empty() && cfg.fast_delay.start >= 0);
    assert!(!cfg.slow_delay.is_empty() && cfg.slow_delay.start >= 0);
    assert!((0.0..=1.0).contains(&cfg.fast_prob));
    let members: Vec<String> = (0..cfg.n_members)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let mut records = Vec::new();
    for trig in 0..cfg.n_triggers {
        let page_id = format!("t3_{}link{trig}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let poster = rng.gen_range(0..cfg.n_members);
        records.push(CommentRecord::new(&members[poster], &page_id, birth));
        for (i, m) in members.iter().enumerate() {
            if i == poster || !rng.gen_bool(cfg.participation) {
                continue;
            }
            let delay = if rng.gen_bool(cfg.fast_prob) {
                rng.gen_range(cfg.fast_delay.clone())
            } else {
                rng.gen_range(cfg.slow_delay.clone())
            };
            records.push(CommentRecord::new(m, &page_id, birth + delay));
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(&SlowDripConfig::default(), &mut rng)
    }

    #[test]
    fn ci_weights_stay_below_the_cutoff() {
        let inj = inject(1);
        let ds = Dataset::from_records(inj.records);
        let btm = ds.btm();
        let narrow = project::project(&btm, Window::zero_to_60s());
        assert!(
            narrow.max_weight() < 10,
            "drip must stay under the paper's cutoff: max {}",
            narrow.max_weight()
        );
        // unlike slow_burn, a 10-minute window doesn't rescue the detector:
        // the slow tail starts at 2 hours
        let wide = project::project(&btm, Window::zero_to_10m());
        assert!(
            wide.max_weight() < 12,
            "10 min window should stay blind: max {}",
            wide.max_weight()
        );
    }

    #[test]
    fn hypergraph_weight_sees_what_the_window_misses() {
        let inj = inject(2);
        let ds = Dataset::from_records(inj.records);
        let btm = ds.btm();
        let id = |n: &str| AuthorId(ds.authors.get(n).unwrap());
        let (a, b, c) = (id("drip_bot_0"), id("drip_bot_1"), id("drip_bot_2"));
        let w_xyz = coordination_core::hypergraph::hyperedge_weight(&btm, a, b, c);
        // all three respond to ~73% of 60 triggers regardless of timing
        assert!(
            w_xyz >= 30,
            "shared-page count should expose the family: w_xyz {w_xyz}"
        );
    }

    #[test]
    fn fast_fraction_controls_visibility() {
        let gen_with = |fast_prob: f64| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let inj = generate(
                &SlowDripConfig {
                    fast_prob,
                    ..Default::default()
                },
                &mut rng,
            );
            let ds = Dataset::from_records(inj.records);
            project::project(&ds.btm(), Window::zero_to_60s()).max_weight()
        };
        assert!(
            gen_with(1.0) > gen_with(0.25) * 3,
            "full-speed responses should tower over the drip"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(inject(9).records, inject(9).records);
    }
}
