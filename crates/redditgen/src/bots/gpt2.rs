//! The GPT-2 text-generation subreddit (paper §3.1.1).
//!
//! All pages live in one bot-only subreddit. Two page types:
//!
//! * **self-threads**: the creating bot replies to itself repeatedly; since
//!   self-interactions are never projected, these pages leave *no trace* in
//!   the CI graph — a deliberate stress on the pipeline;
//! * **mixed pages**: a random subset of the network comments with short gaps
//!   between posts (text generation is fast but not instant).
//!
//! Because only subsets participate per page, pairwise weights grow slowly and
//! the resulting CI component is sparse with a modest weight range (the paper
//! measured 25–33), unlike the dense share–reshare cliques.

use coordination_core::records::CommentRecord;
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration of a GPT-2-style generation network.
#[derive(Clone, Debug)]
pub struct Gpt2Config {
    /// Number of bot accounts.
    pub n_bots: usize,
    /// Pages the network creates during the month.
    pub n_pages: usize,
    /// Probability a page is a self-thread (no cross-bot comments).
    pub self_thread_prob: f64,
    /// Comments a bot writes on its own self-thread.
    pub self_thread_len: std::ops::Range<usize>,
    /// How many bots (beyond the creator) join a mixed page.
    pub mixed_participants: std::ops::Range<usize>,
    /// Seconds between consecutive comments on a page (generation latency).
    pub comment_gap: std::ops::Range<i64>,
    /// Month start / span.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for Gpt2Config {
    fn default() -> Self {
        Gpt2Config {
            // 1200 pages over the month puts the pairwise weight distribution
            // right where the paper measured the network: a single sparse
            // component at cutoff 25 with edge weights in [25, 33]
            n_bots: 25,
            n_pages: 1_200,
            self_thread_prob: 0.4,
            self_thread_len: 3..10,
            mixed_participants: 3..8,
            comment_gap: 5..55,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "gpt2_bot_".to_string(),
        }
    }
}

/// Output of the injector: the records plus member names for ground truth.
pub struct Injection {
    /// Generated comments.
    pub records: Vec<CommentRecord>,
    /// Bot account names.
    pub members: Vec<String>,
}

/// Generate the network's month of activity.
pub fn generate<R: Rng + ?Sized>(cfg: &Gpt2Config, rng: &mut R) -> Injection {
    assert!(cfg.n_bots >= 2, "a network needs at least two bots");
    assert!(!cfg.comment_gap.is_empty() && cfg.comment_gap.start >= 0);
    let members: Vec<String> = (0..cfg.n_bots)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let mut records = Vec::new();
    let idx: Vec<usize> = (0..cfg.n_bots).collect();

    for page in 0..cfg.n_pages {
        let page_id = format!("t3_{}sub{page}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let creator = rng.gen_range(0..cfg.n_bots);
        let mut ts = birth;
        if rng.gen_bool(cfg.self_thread_prob) {
            // self-thread: creator replies to itself; invisible to projection
            let len = rng.gen_range(cfg.self_thread_len.clone());
            for _ in 0..len.max(1) {
                records.push(CommentRecord::new(&members[creator], &page_id, ts));
                ts += rng.gen_range(cfg.comment_gap.clone());
            }
        } else {
            // mixed page: creator comments, then a random subset follows
            records.push(CommentRecord::new(&members[creator], &page_id, ts));
            let k = rng
                .gen_range(cfg.mixed_participants.clone())
                .min(cfg.n_bots - 1);
            let mut others: Vec<usize> = idx.iter().copied().filter(|&b| b != creator).collect();
            others.shuffle(rng);
            for &b in others.iter().take(k) {
                ts += rng.gen_range(cfg.comment_gap.clone());
                records.push(CommentRecord::new(&members[b], &page_id, ts));
            }
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64, cfg: &Gpt2Config) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    #[test]
    fn only_bots_touch_the_subreddit() {
        let inj = inject(1, &Gpt2Config::default());
        let members: std::collections::HashSet<&str> =
            inj.members.iter().map(String::as_str).collect();
        assert_eq!(members.len(), 25);
        for r in &inj.records {
            assert!(members.contains(r.author.as_str()));
            assert!(r.link_id.contains("gpt2_bot_"));
        }
    }

    #[test]
    fn self_threads_produce_no_ci_edges() {
        let cfg = Gpt2Config {
            self_thread_prob: 1.0,
            ..Default::default()
        };
        let inj = inject(2, &cfg);
        let ds = Dataset::from_records(inj.records);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        assert_eq!(ci.n_edges(), 0, "self-interactions must not project");
    }

    #[test]
    fn mixed_pages_build_a_connected_sparse_component_at_cutoff_25() {
        // the paper's Figure-1 parameters: window (0, 60s), cutoff 25
        let cfg = Gpt2Config {
            self_thread_prob: 0.3,
            ..Default::default()
        };
        let inj = inject(3, &cfg);
        let ds = Dataset::from_records(inj.records);
        let ci = project::project(&ds.btm(), Window::zero_to_60s());
        let comps = ci.components(25);
        assert_eq!(comps.len(), 1, "one GPT component at cutoff 25");
        assert_eq!(comps[0].len(), 25, "covers the whole network");
        let sub =
            tripoll::clique::Subgraph::induce(&ci.threshold(25).to_weighted_graph(), &comps[0]);
        assert!(
            sub.density() < 0.5,
            "sparse, unlike share–reshare: {}",
            sub.density()
        );
        let (lo, hi) = sub.weight_range().unwrap();
        assert!(
            lo >= 25 && hi <= 40,
            "weight range ({lo},{hi}) vs paper's (25,33)"
        );
    }

    #[test]
    fn comment_gaps_respect_configuration() {
        let cfg = Gpt2Config {
            self_thread_prob: 0.0,
            ..Default::default()
        };
        let inj = inject(4, &cfg);
        // group by page, check consecutive gaps
        let mut per_page: std::collections::HashMap<&str, Vec<i64>> =
            std::collections::HashMap::new();
        for r in &inj.records {
            per_page
                .entry(r.link_id.as_str())
                .or_default()
                .push(r.created_utc);
        }
        for ts in per_page.values_mut() {
            ts.sort_unstable();
            for pair in ts.windows(2) {
                let gap = pair[1] - pair[0];
                assert!((5..55).contains(&gap), "gap {gap} outside configured range");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = Gpt2Config::default();
        assert_eq!(inject(9, &cfg).records, inject(9, &cfg).records);
    }
}
