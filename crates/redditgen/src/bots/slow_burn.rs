//! Slow-burn coordination: networks whose responses arrive minutes, not
//! seconds, after the trigger.
//!
//! The paper's §2.2 argues window choice targets behaviour types: "if the
//! bipartite temporal graph represents data from a low traffic network, a
//! larger time window should be selected". Text-generation pipelines with
//! queueing, human-in-the-loop curation, or deliberate jitter respond on the
//! scale of minutes — invisible to a (0, 60 s) projection and plainly visible
//! at (0, 10 min). This injector exists to make that trade measurable: the
//! window-study experiments show the family appearing as the window crosses
//! its response scale.

use coordination_core::records::CommentRecord;
use rand::Rng;

use super::gpt2::Injection;

/// Configuration of a slow-responding coordinated network.
#[derive(Clone, Debug)]
pub struct SlowBurnConfig {
    /// Network size.
    pub n_members: usize,
    /// Trigger pages over the month.
    pub n_triggers: usize,
    /// Probability each member responds to a trigger.
    pub participation: f64,
    /// Response delay after the trigger — *minutes*, the defining trait.
    pub response_delay: std::ops::Range<i64>,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for SlowBurnConfig {
    fn default() -> Self {
        SlowBurnConfig {
            n_members: 6,
            n_triggers: 45,
            participation: 0.85,
            // 2–20 minutes: pairwise response deltas rarely fall inside a
            // 60 s window but almost always inside a 10-minute one
            response_delay: 120..1_200,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "curator_bot_".to_string(),
        }
    }
}

/// Generate the month's slow trigger/response activity.
pub fn generate<R: Rng + ?Sized>(cfg: &SlowBurnConfig, rng: &mut R) -> Injection {
    assert!(cfg.n_members >= 2, "need at least two members");
    assert!(!cfg.response_delay.is_empty() && cfg.response_delay.start >= 0);
    let members: Vec<String> = (0..cfg.n_members)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let mut records = Vec::new();
    for trig in 0..cfg.n_triggers {
        let page_id = format!("t3_{}page{trig}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let poster = rng.gen_range(0..cfg.n_members);
        records.push(CommentRecord::new(&members[poster], &page_id, birth));
        for (i, m) in members.iter().enumerate() {
            if i == poster || !rng.gen_bool(cfg.participation) {
                continue;
            }
            records.push(CommentRecord::new(
                m,
                &page_id,
                birth + rng.gen_range(cfg.response_delay.clone()),
            ));
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(&SlowBurnConfig::default(), &mut rng)
    }

    #[test]
    fn invisible_at_60s_visible_at_10min() {
        let inj = inject(1);
        let ds = Dataset::from_records(inj.records);
        let btm = ds.btm();
        let narrow = project::project(&btm, Window::zero_to_60s());
        let wide = project::project(&btm, Window::zero_to_10m());
        // a few responses land within 60s of each other by chance, but
        // nothing approaching coordination cutoffs
        assert!(
            narrow.max_weight() < 15,
            "60s window should miss the network: max {}",
            narrow.max_weight()
        );
        // the 10-minute window captures most of the response pattern
        assert!(
            wide.max_weight() >= narrow.max_weight() * 2,
            "10min window should expose it: {} vs {}",
            wide.max_weight(),
            narrow.max_weight()
        );
        assert!(
            narrow.components(20).is_empty(),
            "no 60s component at cutoff 20"
        );
        let comps = wide.components(20);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 6, "the full network connects at 10min");
    }

    #[test]
    fn delays_are_in_the_configured_band() {
        let inj = inject(2);
        let mut per_page: std::collections::HashMap<&str, Vec<i64>> =
            std::collections::HashMap::new();
        for r in &inj.records {
            per_page
                .entry(r.link_id.as_str())
                .or_default()
                .push(r.created_utc);
        }
        for ts in per_page.values_mut() {
            ts.sort_unstable();
            let first = ts[0];
            for &t in &ts[1..] {
                assert!((120..1_200).contains(&(t - first)), "delay {}", t - first);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(inject(9).records, inject(9).records);
    }
}
