//! Camouflage: coordinated accounts that also behave like humans.
//!
//! The paper's normalization argument (§2.1.3) cuts both ways: dividing by
//! the authors' page counts suppresses *hyperactive humans*, but a botnet can
//! exploit it by sprinkling decoy comments across random organic pages —
//! inflating `p_x`/`P'_x` and dragging `C` and `T` down while leaving the raw
//! weights `w_xyz`/`min w'` untouched. This injector wraps any botnet's
//! members with that evasion so tests and benches can quantify how each
//! metric degrades (the raw-weight cutoffs are immune; the normalized scores
//! degrade in proportion to the decoy ratio).

use coordination_core::records::CommentRecord;
use rand::Rng;

/// Decoy configuration.
#[derive(Clone, Debug)]
pub struct CamouflageConfig {
    /// Decoy comments per bot, as a multiple of the bot's coordinated
    /// comment count (1.0 = as many decoys as real actions).
    pub decoy_ratio: f64,
    /// Decoys land on organic pages sampled from this list.
    pub organic_pages: Vec<String>,
}

/// Add decoy comments for every member of `members` found in `coordinated`.
/// Decoy timestamps are sampled uniformly among the coordinated records'
/// span, on random organic pages — deliberately *not* synchronized with the
/// other members.
pub fn add_decoys<R: Rng + ?Sized>(
    cfg: &CamouflageConfig,
    members: &[String],
    coordinated: &[CommentRecord],
    rng: &mut R,
) -> Vec<CommentRecord> {
    assert!(cfg.decoy_ratio >= 0.0);
    assert!(
        !cfg.organic_pages.is_empty(),
        "need organic pages to hide on"
    );
    let (t_min, t_max) = coordinated
        .iter()
        .fold((i64::MAX, i64::MIN), |(lo, hi), r| {
            (lo.min(r.created_utc), hi.max(r.created_utc))
        });
    let mut out = Vec::new();
    for m in members {
        let real = coordinated.iter().filter(|r| &r.author == m).count();
        let decoys = (real as f64 * cfg.decoy_ratio).round() as usize;
        for _ in 0..decoys {
            let page = &cfg.organic_pages[rng.gen_range(0..cfg.organic_pages.len())];
            let ts = if t_max > t_min {
                rng.gen_range(t_min..=t_max)
            } else {
                t_min
            };
            out.push(CommentRecord::new(m.clone(), page.clone(), ts));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bots::reshare::{self, ReshareConfig};
    use coordination_core::records::Dataset;
    use coordination_core::{project, AuthorId, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn organic_pages(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("t3_org{i}")).collect()
    }

    #[test]
    fn decoy_volume_follows_ratio() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inj = reshare::generate(&ReshareConfig::default(), &mut rng);
        let real = inj.records.len();
        let decoys = add_decoys(
            &CamouflageConfig {
                decoy_ratio: 2.0,
                organic_pages: organic_pages(50),
            },
            &inj.members,
            &inj.records,
            &mut rng,
        );
        let expected = real * 2;
        assert!(
            (decoys.len() as i64 - expected as i64).unsigned_abs() <= inj.members.len() as u64,
            "decoys {} vs expected {expected}",
            decoys.len()
        );
    }

    #[test]
    fn camouflage_dilutes_normalized_scores_but_not_raw_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inj = reshare::generate(&ReshareConfig::default(), &mut rng);
        let decoys = add_decoys(
            // a big page pool: decoys rarely collide, so they inflate p_x
            // without adding shared pages
            &CamouflageConfig {
                decoy_ratio: 3.0,
                organic_pages: organic_pages(5_000),
            },
            &inj.members,
            &inj.records,
            &mut rng,
        );

        let run = |records: Vec<CommentRecord>| {
            let ds = Dataset::from_records(records);
            let btm = ds.btm();
            let ci = project::project(&btm, Window::zero_to_60s());
            let id = |n: &str| AuthorId(ds.authors.get(n).unwrap());
            let (a, b, c) = (id("stream_bot_0"), id("stream_bot_1"), id("stream_bot_2"));
            let min_w = ci.weight(a, b).min(ci.weight(a, c)).min(ci.weight(b, c));
            let w_xyz = coordination_core::hypergraph::hyperedge_weight(&btm, a, b, c);
            let c_score = coordination_core::metrics::c_score(
                w_xyz,
                btm.page_count(a),
                btm.page_count(b),
                btm.page_count(c),
            );
            (min_w, w_xyz, c_score)
        };

        let (w_clean, h_clean, c_clean) = run(inj.records.clone());
        let mut hidden = inj.records.clone();
        hidden.extend(decoys);
        let (w_camo, h_camo, c_camo) = run(hidden);

        // raw windowed weight untouched (decoys are unsynchronized)
        assert!(
            w_camo <= w_clean + 2 && w_camo + 2 >= w_clean,
            "min w' moved: {w_clean} -> {w_camo}"
        );
        // hyperedge weight can only grow (decoys may coincide on pages)
        assert!(h_camo >= h_clean);
        // the normalized score collapses with 3x decoys
        assert!(
            c_camo < c_clean * 0.5,
            "C should dilute: {c_clean:.3} -> {c_camo:.3}"
        );
    }

    #[test]
    #[should_panic(expected = "organic pages")]
    fn needs_pages_to_hide_on() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        add_decoys(
            &CamouflageConfig {
                decoy_ratio: 1.0,
                organic_pages: Vec::new(),
            },
            &["x".to_string()],
            &[CommentRecord::new("x", "p", 0)],
            &mut rng,
        );
    }
}
