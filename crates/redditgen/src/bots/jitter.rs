//! Timing-jittered cliques: coordinated bursts that straddle the window edge.
//!
//! The projection only credits a pair when both comments land inside the
//! (δ1, δ2) window, so an adversary that knows δ2 can spread its responses
//! over a few multiples of it: every trigger still gets the full pile-on, but
//! only a fraction of the pairwise deltas survive the window test. With
//! delays uniform on `(0, straddle·δ2)` the surviving fraction for a
//! responder pair is about `1 − (1 − 1/straddle)²` (5/9 at the default
//! `straddle = 3`), dragging edge weights from "obvious clique" down to the
//! neighbourhood of the paper's min-weight cutoff — the detector's decision
//! boundary, which is exactly where an evader wants to sit.

use coordination_core::records::CommentRecord;
use rand::Rng;

use super::gpt2::Injection;

/// Configuration of a window-straddling coordinated network.
#[derive(Clone, Debug)]
pub struct JitterConfig {
    /// Network size.
    pub n_members: usize,
    /// Trigger pages over the month.
    pub n_triggers: usize,
    /// Probability each member responds to a trigger.
    pub participation: f64,
    /// The δ2 the adversary is evading, seconds.
    pub window_edge: i64,
    /// Response delays are uniform on `(0, straddle · window_edge)`; larger
    /// values push more pairwise deltas outside the window.
    pub straddle: f64,
    /// Month start.
    pub t0: i64,
    /// Month length in seconds.
    pub span: i64,
    /// Account-name prefix.
    pub name_prefix: String,
}

impl Default for JitterConfig {
    fn default() -> Self {
        JitterConfig {
            n_members: 8,
            // 24 triggers × the ~5/9 surviving-pair fraction lands pairwise
            // weights right around the paper's cutoff of 10
            n_triggers: 24,
            participation: 0.9,
            window_edge: 60,
            straddle: 3.0,
            t0: 0,
            span: crate::MONTH_SECS,
            name_prefix: "jitter_bot_".to_string(),
        }
    }
}

/// Generate the month's jittered trigger/response activity.
pub fn generate<R: Rng + ?Sized>(cfg: &JitterConfig, rng: &mut R) -> Injection {
    assert!(cfg.n_members >= 2, "need at least two members");
    assert!(cfg.window_edge > 0, "window edge must be positive");
    assert!(cfg.straddle >= 1.0, "straddle < 1 would be fully in-window");
    let spread = ((cfg.window_edge as f64) * cfg.straddle) as i64;
    let members: Vec<String> = (0..cfg.n_members)
        .map(|i| format!("{}{}", cfg.name_prefix, i))
        .collect();
    let mut records = Vec::new();
    for trig in 0..cfg.n_triggers {
        let page_id = format!("t3_{}link{trig}", cfg.name_prefix);
        let birth = cfg.t0 + rng.gen_range(0..cfg.span.max(1));
        let poster = rng.gen_range(0..cfg.n_members);
        records.push(CommentRecord::new(&members[poster], &page_id, birth));
        for (i, m) in members.iter().enumerate() {
            if i == poster || !rng.gen_bool(cfg.participation) {
                continue;
            }
            let ts = birth + rng.gen_range(1..spread.max(2));
            records.push(CommentRecord::new(m, &page_id, ts));
        }
    }
    Injection { records, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coordination_core::records::Dataset;
    use coordination_core::{project, Window};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn inject(seed: u64, cfg: &JitterConfig) -> Injection {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate(cfg, &mut rng)
    }

    #[test]
    fn delays_straddle_the_window_edge() {
        let inj = inject(1, &JitterConfig::default());
        let mut per_page: std::collections::HashMap<&str, Vec<i64>> =
            std::collections::HashMap::new();
        for r in &inj.records {
            per_page
                .entry(r.link_id.as_str())
                .or_default()
                .push(r.created_utc);
        }
        let (mut inside, mut outside) = (0usize, 0usize);
        for ts in per_page.values_mut() {
            ts.sort_unstable();
            let first = ts[0];
            for &t in &ts[1..] {
                let d = t - first;
                assert!((1..180).contains(&d), "delay {d}");
                if d <= 60 {
                    inside += 1;
                } else {
                    outside += 1;
                }
            }
        }
        // the defining trait: responses land on both sides of δ2
        assert!(inside > 0 && outside > 0);
        assert!(outside > inside, "most delays should escape the window");
    }

    #[test]
    fn jitter_suppresses_edge_weights_toward_the_cutoff() {
        let cfg = JitterConfig::default();
        let jittered = inject(2, &cfg);
        // the same cadence without the evasion: all delays inside the window
        let tight = inject(
            2,
            &JitterConfig {
                straddle: 1.0,
                ..cfg.clone()
            },
        );
        let max_w = |inj: Injection| {
            let ds = Dataset::from_records(inj.records);
            project::project(&ds.btm(), Window::zero_to_60s()).max_weight()
        };
        let (wj, wt) = (max_w(jittered), max_w(tight));
        assert!(
            (wj as f64) < wt as f64 * 0.75,
            "straddling should shed weight: jittered {wj} vs tight {wt}"
        );
        // hovers at the decision boundary, not at clique scale
        assert!((6..=18).contains(&wj), "jittered max weight {wj}");
    }

    #[test]
    fn a_wider_window_recovers_the_clique() {
        let inj = inject(3, &JitterConfig::default());
        let ds = Dataset::from_records(inj.records);
        let btm = ds.btm();
        let narrow = project::project(&btm, Window::zero_to_60s());
        let wide = project::project(&btm, Window::zero_to_10m());
        // the (0, 10 min) window swallows the whole 180 s spread
        assert!(wide.max_weight() > narrow.max_weight());
        let comps = wide.components(15);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 8, "full network connects at 10 min");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = JitterConfig::default();
        assert_eq!(inject(9, &cfg).records, inject(9, &cfg).records);
    }
}
