//! Ground-truth labels and detection-quality evaluation.
//!
//! The paper validated its findings by manually inspecting components; with a
//! generator we know exactly which accounts coordinate, so flagged triplets
//! can be scored. A triplet is a *true positive* when all three authors belong
//! to the same coordinated family.

use std::collections::{HashMap, HashSet};

/// The kind of coordination a family exhibits.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BotKind {
    /// GPT-2-style generation subreddit (paper §3.1.1).
    Gpt2,
    /// Share–reshare / link distribution (paper §3.1.2).
    ShareReshare,
    /// Minute-scale coordinated responses (window-targeting study).
    SlowBurn,
    /// Reply-trigger utility bots (paper §3.1.4).
    ReplyTrigger,
    /// Platform-role accounts (excluded pre-projection).
    Helpful,
    /// Burst delays straddling the (δ1, δ2) window edge (evasion).
    JitteredClique,
    /// Coordination spread too thin for the per-window weight cutoff (evasion).
    SlowDrip,
    /// Handle rotation mid-month; aliases map back to one family (evasion).
    Churn,
    /// Diurnal-shaped bot activity imitating the organic curve (evasion).
    Mimicry,
}

/// One coordinated family.
#[derive(Clone, Debug)]
pub struct BotFamily {
    /// Family label, e.g. `"gpt2"`.
    pub name: String,
    /// Member account names.
    pub members: Vec<String>,
    /// Mechanism.
    pub kind: BotKind,
}

/// The full ground truth of a generated scenario.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    families: Vec<BotFamily>,
    member_to_family: HashMap<String, usize>,
    /// Rotated handle → canonical member name. A churned botnet writes under
    /// several handles over the month; detection quality must credit a flagged
    /// rotated handle to the same family (and the same logical account) as its
    /// canonical name, or churn would turn every true positive into a false
    /// one.
    aliases: HashMap<String, String>,
}

impl GroundTruth {
    /// Empty truth (all traffic organic).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a family. Member names must be globally unique.
    pub fn add_family(&mut self, family: BotFamily) {
        let idx = self.families.len();
        for m in &family.members {
            assert!(
                !self.aliases.contains_key(m),
                "account {m} is already an alias"
            );
            let prev = self.member_to_family.insert(m.clone(), idx);
            assert!(prev.is_none(), "account {m} belongs to two families");
        }
        self.families.push(family);
    }

    /// Register `alias` as a rotated handle of the already-registered member
    /// `canonical`. Lookups and evaluation resolve through the alias, so the
    /// two handles score as one account in one family.
    pub fn add_alias(&mut self, alias: impl Into<String>, canonical: &str) {
        let alias = alias.into();
        assert!(
            self.member_to_family.contains_key(canonical),
            "canonical account {canonical} is not a registered member"
        );
        assert!(
            !self.member_to_family.contains_key(&alias),
            "alias {alias} is already a member"
        );
        let prev = self.aliases.insert(alias.clone(), canonical.to_string());
        assert!(prev.is_none(), "alias {alias} registered twice");
    }

    /// All families.
    pub fn families(&self) -> &[BotFamily] {
        &self.families
    }

    /// All registered handle aliases as `(alias, canonical)` pairs, sorted by
    /// alias so output built from them is deterministic.
    pub fn aliases(&self) -> Vec<(&str, &str)> {
        let mut out: Vec<(&str, &str)> = self
            .aliases
            .iter()
            .map(|(a, c)| (a.as_str(), c.as_str()))
            .collect();
        out.sort_unstable();
        out
    }

    /// Resolve a handle to its canonical member name (identity for
    /// non-aliased names).
    pub fn resolve<'a>(&'a self, name: &'a str) -> &'a str {
        self.aliases.get(name).map(String::as_str).unwrap_or(name)
    }

    /// The family containing `name` (alias-resolved), if any.
    pub fn family_of(&self, name: &str) -> Option<&BotFamily> {
        self.member_to_family
            .get(self.resolve(name))
            .map(|&i| &self.families[i])
    }

    /// Whether `name` (alias-resolved) is any kind of bot.
    pub fn is_bot(&self, name: &str) -> bool {
        self.member_to_family.contains_key(self.resolve(name))
    }

    /// Whether all three (alias-resolved) authors belong to one coordinated
    /// (non-`Helpful`) family — the true-positive criterion for a flagged
    /// triplet.
    pub fn same_coordinated_family(&self, t: [&str; 3]) -> bool {
        let fams = t.map(|n| self.member_to_family.get(self.resolve(n)));
        match fams {
            [Some(a), Some(b), Some(c)] if a == b && b == c => {
                self.families[*a].kind != BotKind::Helpful
            }
            _ => false,
        }
    }

    /// Total coordinated accounts, excluding `Helpful` (which the pipeline
    /// removes before projection and should never flag).
    pub fn n_coordinated_accounts(&self) -> usize {
        self.families
            .iter()
            .filter(|f| f.kind != BotKind::Helpful)
            .map(|f| f.members.len())
            .sum()
    }

    /// Score a set of flagged triplets (author names).
    pub fn evaluate<'a, I>(&self, flagged: I) -> Evaluation
    where
        I: IntoIterator<Item = [&'a str; 3]>,
    {
        let mut flagged_total = 0usize;
        let mut true_positives = 0usize;
        let mut detected_families: HashSet<usize> = HashSet::new();
        let mut flagged_members: HashSet<&str> = HashSet::new();
        for t in flagged {
            flagged_total += 1;
            if self.same_coordinated_family(t) {
                true_positives += 1;
                let canon = self.resolve(t[0]);
                let fam = self.member_to_family[canon];
                detected_families.insert(fam);
                for n in t {
                    // alias-resolved: pre- and post-rotation handles of a
                    // churned account count as one member for recall
                    flagged_members.insert(self.resolve(n));
                }
            }
        }
        let coordinated_families = self
            .families
            .iter()
            .enumerate()
            .filter(|(_, f)| f.kind != BotKind::Helpful)
            .count();
        let members_in_detected: usize = flagged_members.len();
        Evaluation {
            flagged_total,
            true_positives,
            precision: if flagged_total == 0 {
                1.0
            } else {
                true_positives as f64 / flagged_total as f64
            },
            families_detected: detected_families.len(),
            families_total: coordinated_families,
            family_recall: if coordinated_families == 0 {
                1.0
            } else {
                detected_families.len() as f64 / coordinated_families as f64
            },
            members_flagged: members_in_detected,
            member_recall: if self.n_coordinated_accounts() == 0 {
                1.0
            } else {
                members_in_detected as f64 / self.n_coordinated_accounts() as f64
            },
        }
    }
}

/// Detection-quality metrics for one pipeline run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Triplets flagged by the pipeline.
    pub flagged_total: usize,
    /// Flagged triplets fully inside one coordinated family.
    pub true_positives: usize,
    /// `true_positives / flagged_total` (1.0 when nothing was flagged).
    pub precision: f64,
    /// Coordinated families hit by at least one true-positive triplet.
    pub families_detected: usize,
    /// Coordinated families in the ground truth.
    pub families_total: usize,
    /// `families_detected / families_total`.
    pub family_recall: f64,
    /// Distinct coordinated accounts appearing in true-positive triplets.
    pub members_flagged: usize,
    /// `members_flagged / coordinated accounts`.
    pub member_recall: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let mut gt = GroundTruth::new();
        gt.add_family(BotFamily {
            name: "gpt2".into(),
            members: (0..5).map(|i| format!("g{i}")).collect(),
            kind: BotKind::Gpt2,
        });
        gt.add_family(BotFamily {
            name: "stream".into(),
            members: (0..4).map(|i| format!("s{i}")).collect(),
            kind: BotKind::ShareReshare,
        });
        gt.add_family(BotFamily {
            name: "helpful".into(),
            members: vec!["AutoModerator".into()],
            kind: BotKind::Helpful,
        });
        gt
    }

    #[test]
    fn lookup_and_membership() {
        let gt = truth();
        assert!(gt.is_bot("g0"));
        assert!(!gt.is_bot("alice"));
        assert_eq!(gt.family_of("s2").unwrap().name, "stream");
        assert_eq!(gt.n_coordinated_accounts(), 9);
    }

    #[test]
    #[should_panic(expected = "two families")]
    fn duplicate_membership_panics() {
        let mut gt = truth();
        gt.add_family(BotFamily {
            name: "dup".into(),
            members: vec!["g0".into()],
            kind: BotKind::Gpt2,
        });
    }

    #[test]
    fn evaluation_scores_mixed_flags() {
        let gt = truth();
        let eval = gt.evaluate([
            ["g0", "g1", "g2"],    // TP (gpt2)
            ["s0", "s1", "s2"],    // TP (stream)
            ["g0", "s0", "s1"],    // FP: cross-family
            ["g0", "g1", "alice"], // FP: organic member
        ]);
        assert_eq!(eval.flagged_total, 4);
        assert_eq!(eval.true_positives, 2);
        assert!((eval.precision - 0.5).abs() < 1e-12);
        assert_eq!(eval.families_detected, 2);
        assert_eq!(eval.families_total, 2);
        assert_eq!(eval.family_recall, 1.0);
        assert_eq!(eval.members_flagged, 6);
        assert!((eval.member_recall - 6.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn helpful_triplets_are_never_true_positives() {
        let mut gt = GroundTruth::new();
        gt.add_family(BotFamily {
            name: "helpful".into(),
            members: vec!["a".into(), "b".into(), "c".into()],
            kind: BotKind::Helpful,
        });
        let eval = gt.evaluate([["a", "b", "c"]]);
        assert_eq!(eval.true_positives, 0);
        assert_eq!(eval.families_total, 0);
    }

    #[test]
    fn empty_flag_set_is_vacuously_precise() {
        let gt = truth();
        let eval = gt.evaluate(std::iter::empty());
        assert_eq!(eval.precision, 1.0);
        assert_eq!(eval.family_recall, 0.0);
    }

    #[test]
    fn aliases_resolve_to_the_canonical_family() {
        let mut gt = truth();
        gt.add_alias("g0_v2", "g0");
        gt.add_alias("g1_v2", "g1");
        assert!(gt.is_bot("g0_v2"));
        assert_eq!(gt.family_of("g0_v2").unwrap().name, "gpt2");
        assert_eq!(gt.resolve("g1_v2"), "g1");
        assert_eq!(gt.resolve("alice"), "alice");
        // rotated handles don't inflate the account census
        assert_eq!(gt.n_coordinated_accounts(), 9);
    }

    #[test]
    fn evaluation_credits_rotated_handles_as_one_family() {
        let mut gt = truth();
        gt.add_alias("g0_v2", "g0");
        gt.add_alias("g1_v2", "g1");
        gt.add_alias("g2_v2", "g2");
        let eval = gt.evaluate([
            ["g0_v2", "g1_v2", "g2_v2"], // all rotated, same family → TP
            ["g0", "g1_v2", "g2"],       // mixed eras, same family → TP
        ]);
        assert_eq!(eval.true_positives, 2);
        assert_eq!(eval.precision, 1.0);
        // g0/g0_v2 etc. collapse to 3 distinct logical accounts
        assert_eq!(eval.members_flagged, 3);
    }

    #[test]
    fn same_coordinated_family_rejects_cross_family_and_organic() {
        let mut gt = truth();
        gt.add_alias("s0_v2", "s0");
        assert!(gt.same_coordinated_family(["s0_v2", "s1", "s2"]));
        assert!(!gt.same_coordinated_family(["s0_v2", "g0", "g1"]));
        assert!(!gt.same_coordinated_family(["s0", "s1", "alice"]));
        assert!(!gt.same_coordinated_family(["AutoModerator", "AutoModerator", "AutoModerator"]));
    }

    #[test]
    #[should_panic(expected = "not a registered member")]
    fn alias_of_unknown_canonical_panics() {
        let mut gt = truth();
        gt.add_alias("x_v2", "nobody");
    }

    #[test]
    #[should_panic(expected = "already an alias")]
    fn member_reusing_an_alias_name_panics() {
        let mut gt = truth();
        gt.add_alias("g0_v2", "g0");
        gt.add_family(BotFamily {
            name: "clash".into(),
            members: vec!["g0_v2".into()],
            kind: BotKind::Churn,
        });
    }
}
