//! Deterministic samplers for the traffic models.
//!
//! Implemented here rather than pulling `rand_distr` to keep the dependency
//! set to the pre-approved crates: Zipf by inverse-CDF over a precomputed
//! table, log-normal via Box–Muller, exponential by inversion, and Poisson by
//! Knuth's product method (the rates used here are small).

use rand::Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(k) ∝ (k+1)^-s`. Sampling is a binary search over the precomputed CDF —
/// O(log n) per draw, exact, and cheap to build for the ~10⁴–10⁶ element
/// ranges the generator uses.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against fp slop at the tail
        *cdf.last_mut().expect("nonempty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `0..n` (rank 0 most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)` with `Z ~ N(0,1)` via Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal with log-space mean `mu` and log-space std-dev `sigma ≥ 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Draw one value (always > 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln is finite
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential with the given mean, by inversion.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Poisson draw by Knuth's product method (fine for `lambda ≲ 30`, which is
/// all the generator needs).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // numerically impossible for sane lambda; avoid infinite loops
            return k;
        }
    }
}

/// Weighted index sampler over arbitrary non-negative weights (CDF inversion).
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Build from weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for c in &mut cdf {
            *c /= acc;
        }
        *cdf.last_mut().expect("nonempty") = 1.0;
        WeightedIndex { cdf }
    }

    /// Sample an index proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.1);
        let mut r = rng(1);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10], "{} vs {}", counts[0], counts[10]);
        assert!(counts[0] > counts[50]);
        // all samples in range is implied by indexing; top rank gets ≥ 10%
        assert!(counts[0] as f64 / 20_000.0 > 0.10);
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut r = rng(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn lognormal_moments_are_plausible() {
        let ln = LogNormal::new(0.0, 0.5);
        let mut r = rng(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| ln.sample(&mut r)).sum::<f64>() / n as f64;
        // E[lognormal(0, 0.5)] = exp(0.125) ≈ 1.133
        assert!((mean - 1.133).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let ln = LogNormal::new(-2.0, 2.0);
        let mut r = rng(4);
        for _ in 0..1000 {
            assert!(ln.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 42.0)).sum::<f64>() / n as f64;
        assert!((mean - 42.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = rng(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut r = rng(7);
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn weighted_index_rejects_all_zero() {
        WeightedIndex::new(&[0.0, 0.0]);
    }
}
