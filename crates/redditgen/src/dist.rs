//! Deterministic samplers for the traffic models, and the block-sharded
//! month generator for rank-distributed workloads.
//!
//! Samplers are implemented here rather than pulling `rand_distr` to keep
//! the dependency set to the pre-approved crates: Zipf by inverse-CDF over a
//! precomputed table, log-normal via Box–Muller, exponential by inversion,
//! and Poisson by Knuth's product method (the rates used here are small).
//!
//! [`DistMonth`] generates a paper-scale synthetic month *by block*: the
//! month is tiled into fixed-size blocks, each derived from its own
//! deterministic RNG stream, so rank `r` of an `n`-rank world can generate
//! exactly blocks `r, r+n, r+2n, …` — the same global event multiset for
//! every rank count, with no rank (or any single machine) ever holding the
//! whole month. This is the workload source for
//! `DistPipeline::run_events`-style streaming benchmarks.

use coordination_core::ids::{AuthorId, Event, PageId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Zipf distribution over ranks `0..n` with exponent `s`:
/// `P(k) ∝ (k+1)^-s`. Sampling is a binary search over the precomputed CDF —
/// O(log n) per draw, exact, and cheap to build for the ~10⁴–10⁶ element
/// ranges the generator uses.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a Zipf sampler over `n` ranks with exponent `s > 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += ((k + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against fp slop at the tail
        *cdf.last_mut().expect("nonempty") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Sample a rank in `0..n` (rank 0 most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Log-normal distribution: `exp(μ + σ·Z)` with `Z ~ N(0,1)` via Box–Muller.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Log-normal with log-space mean `mu` and log-space std-dev `sigma ≥ 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "sigma must be non-negative");
        LogNormal { mu, sigma }
    }

    /// Draw one value (always > 0).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln is finite
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Exponential with the given mean, by inversion.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean > 0.0, "exponential mean must be positive");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Poisson draw by Knuth's product method (fine for `lambda ≲ 30`, which is
/// all the generator needs).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> u64 {
    assert!(lambda >= 0.0, "lambda must be non-negative");
    if lambda == 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            // numerically impossible for sane lambda; avoid infinite loops
            return k;
        }
    }
}

/// Weighted index sampler over arbitrary non-negative weights (CDF inversion).
#[derive(Clone, Debug)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Build from weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for c in &mut cdf {
            *c /= acc;
        }
        *cdf.last_mut().expect("nonempty") = 1.0;
        WeightedIndex { cdf }
    }

    /// Sample an index proportional to its weight.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Configuration for the block-sharded month generator.
///
/// The organic traffic is Zipf-skewed over dense author and page id spaces;
/// coordinated bot cliques are injected as *bursts*: for each burst, every
/// member of the clique comments on one dedicated page within a 50-second
/// span (inside the paper's 60-second coordination window), so each clique
/// pair accumulates CI weight `bursts_per_clique` — comfortably above the
/// detection threshold, giving the survey real triangles at scale.
#[derive(Clone, Debug)]
pub struct DistMonthConfig {
    /// Master seed; every block derives its own stream from it.
    pub seed: u64,
    /// Number of generation blocks the month is tiled into.
    pub n_blocks: usize,
    /// Organic comments per block.
    pub block_comments: usize,
    /// Organic author id space (bot authors are appended after it).
    pub organic_authors: u32,
    /// Organic page id space (burst pages are appended after it).
    pub organic_pages: u32,
    /// Zipf exponent for author activity.
    pub author_zipf: f64,
    /// Zipf exponent for page popularity.
    pub page_zipf: f64,
    /// Number of injected bot cliques.
    pub n_cliques: u32,
    /// Authors per clique (3+ so triangles exist).
    pub clique_size: u32,
    /// Coordinated bursts per clique — the CI edge weight each clique pair
    /// ends up with.
    pub bursts_per_clique: u32,
}

impl DistMonthConfig {
    /// The paper-scale benchmark month: ~2M comments over 120K authors and
    /// 60K pages, with 8 five-author cliques at burst weight 40.
    pub fn jan2020_large() -> Self {
        DistMonthConfig {
            seed: 0x0120_2001,
            n_blocks: 256,
            block_comments: 7_800,
            organic_authors: 120_000,
            organic_pages: 60_000,
            author_zipf: 0.8,
            page_zipf: 0.9,
            n_cliques: 8,
            clique_size: 5,
            bursts_per_clique: 40,
        }
    }
}

/// The block-sharded month generator: [`DistMonthConfig`] plus the
/// precomputed Zipf tables (built once, shared by every block).
pub struct DistMonth {
    cfg: DistMonthConfig,
    author_dist: Zipf,
    page_dist: Zipf,
}

/// SplitMix64 finalizer — decorrelates per-block seeds derived from one
/// master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl DistMonth {
    /// Build the generator (precomputes the Zipf CDFs).
    pub fn new(cfg: DistMonthConfig) -> Self {
        assert!(cfg.n_blocks > 0, "need at least one block");
        assert!(cfg.organic_authors > 0 && cfg.organic_pages > 0);
        let author_dist = Zipf::new(cfg.organic_authors as usize, cfg.author_zipf);
        let page_dist = Zipf::new(cfg.organic_pages as usize, cfg.page_zipf);
        DistMonth {
            cfg,
            author_dist,
            page_dist,
        }
    }

    /// The configuration this generator was built from.
    pub fn config(&self) -> &DistMonthConfig {
        &self.cfg
    }

    /// Total dense author id space (organic + clique members).
    pub fn total_authors(&self) -> u32 {
        self.cfg.organic_authors + self.cfg.n_cliques * self.cfg.clique_size
    }

    /// Total dense page id space (organic + one page per burst).
    pub fn total_pages(&self) -> u32 {
        self.cfg.organic_pages + self.cfg.n_cliques * self.cfg.bursts_per_clique
    }

    /// Total comments in the month (organic + burst events).
    pub fn n_comments(&self) -> u64 {
        self.cfg.n_blocks as u64 * self.cfg.block_comments as u64
            + u64::from(self.cfg.n_cliques)
                * u64::from(self.cfg.bursts_per_clique)
                * u64::from(self.cfg.clique_size)
    }

    /// Generate block `b` into `out` (cleared first). Depends only on
    /// `(seed, b)` — which rank generates a block never changes its events.
    pub fn block_into(&self, b: usize, out: &mut Vec<Event>) {
        assert!(b < self.cfg.n_blocks, "block out of range");
        out.clear();
        let cfg = &self.cfg;
        let mut rng = ChaCha8Rng::seed_from_u64(splitmix64(cfg.seed ^ b as u64));
        let slice = crate::MONTH_SECS / cfg.n_blocks as i64;
        let t_lo = b as i64 * slice;
        // Organic traffic: Zipf author on Zipf page, uniform in the block's
        // time slice.
        for _ in 0..cfg.block_comments {
            let a = self.author_dist.sample(&mut rng) as u32;
            let p = self.page_dist.sample(&mut rng) as u32;
            let ts = t_lo + rng.gen_range(0..slice.max(1));
            out.push(Event::new(AuthorId(a), PageId(p), ts));
        }
        // Coordinated bursts assigned to this block, round-robin by global
        // burst index. Each burst gets its own page; all clique members
        // comment within 50 seconds.
        let total_bursts = cfg.n_cliques * cfg.bursts_per_clique;
        let mut g = (b % cfg.n_blocks) as u32;
        while g < total_bursts {
            let clique = g / cfg.bursts_per_clique;
            let page = cfg.organic_pages + g;
            let t0 = t_lo + rng.gen_range(0..(slice - 55).max(1));
            for m in 0..cfg.clique_size {
                let author = cfg.organic_authors + clique * cfg.clique_size + m;
                let ts = t0 + rng.gen_range(0..50i64);
                out.push(Event::new(AuthorId(author), PageId(page), ts));
            }
            g += cfg.n_blocks as u32;
        }
    }

    /// Stream rank `r`'s share of the month — blocks `r, r+nranks, …` in
    /// order, one block buffered at a time. The union over all ranks is the
    /// same event multiset for every `nranks`.
    pub fn rank_events(&self, rank: usize, nranks: usize) -> impl Iterator<Item = Event> + '_ {
        assert!(nranks > 0 && rank < nranks, "bad rank/nranks");
        let mut buf: Vec<Event> = Vec::new();
        let mut at = 0usize;
        let mut next_block = rank;
        let n_blocks = self.cfg.n_blocks;
        std::iter::from_fn(move || loop {
            if at < buf.len() {
                let e = buf[at];
                at += 1;
                return Some(e);
            }
            if next_block >= n_blocks {
                return None;
            }
            self.block_into(next_block, &mut buf);
            at = 0;
            next_block += nranks;
        })
    }

    /// Stream the whole month in block order — the resident-pipeline side of
    /// the comparison (it still only buffers one block at a time; the
    /// consumer decides what to materialize).
    pub fn all_events(&self) -> impl Iterator<Item = Event> + '_ {
        self.rank_events(0, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let z = Zipf::new(100, 1.1);
        let mut r = rng(1);
        let mut counts = vec![0u64; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10], "{} vs {}", counts[0], counts[10]);
        assert!(counts[0] > counts[50]);
        // all samples in range is implied by indexing; top rank gets ≥ 10%
        assert!(counts[0] as f64 / 20_000.0 > 0.10);
    }

    #[test]
    fn zipf_single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut r = rng(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut r), 0);
        }
    }

    #[test]
    fn lognormal_moments_are_plausible() {
        let ln = LogNormal::new(0.0, 0.5);
        let mut r = rng(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| ln.sample(&mut r)).sum::<f64>() / n as f64;
        // E[lognormal(0, 0.5)] = exp(0.125) ≈ 1.133
        assert!((mean - 1.133).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn lognormal_is_positive() {
        let ln = LogNormal::new(-2.0, 2.0);
        let mut r = rng(4);
        for _ in 0..1000 {
            assert!(ln.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn exponential_mean_converges() {
        let mut r = rng(5);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| exponential(&mut r, 42.0)).sum::<f64>() / n as f64;
        assert!((mean - 42.0).abs() < 1.5, "mean {mean}");
    }

    #[test]
    fn poisson_mean_converges() {
        let mut r = rng(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut r = rng(7);
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn samplers_are_deterministic_per_seed() {
        let z = Zipf::new(50, 1.2);
        let a: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn weighted_index_rejects_all_zero() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    fn small_month() -> DistMonth {
        DistMonth::new(DistMonthConfig {
            seed: 42,
            n_blocks: 12,
            block_comments: 300,
            organic_authors: 500,
            organic_pages: 200,
            author_zipf: 0.8,
            page_zipf: 0.9,
            n_cliques: 2,
            clique_size: 4,
            bursts_per_clique: 6,
        })
    }

    fn event_key(e: &Event) -> (u32, u32, i64) {
        (e.author.0, e.page.0, e.ts)
    }

    #[test]
    fn dist_month_counts_and_bounds() {
        let m = small_month();
        let events: Vec<Event> = m.all_events().collect();
        assert_eq!(events.len() as u64, m.n_comments());
        assert_eq!(m.n_comments(), 12 * 300 + 2 * 6 * 4);
        for e in &events {
            assert!(e.author.0 < m.total_authors());
            assert!(e.page.0 < m.total_pages());
            assert!((0..crate::MONTH_SECS).contains(&e.ts));
        }
        // The bursts really land: every clique author appears.
        let organic = m.config().organic_authors;
        for a in organic..m.total_authors() {
            assert!(events.iter().any(|e| e.author.0 == a), "author {a} missing");
        }
    }

    #[test]
    fn dist_month_same_multiset_for_every_rank_count() {
        let m = small_month();
        let mut reference: Vec<_> = m.all_events().map(|e| event_key(&e)).collect();
        reference.sort_unstable();
        for nranks in [1usize, 2, 4, 5] {
            let mut union: Vec<_> = (0..nranks)
                .flat_map(|r| m.rank_events(r, nranks).collect::<Vec<_>>())
                .map(|e| event_key(&e))
                .collect();
            union.sort_unstable();
            assert_eq!(union, reference, "nranks {nranks} changed the multiset");
        }
    }

    #[test]
    fn dist_month_is_deterministic_per_seed() {
        let a: Vec<_> = small_month().all_events().map(|e| event_key(&e)).collect();
        let b: Vec<_> = small_month().all_events().map(|e| event_key(&e)).collect();
        assert_eq!(a, b);
        let mut cfg = small_month().config().clone();
        cfg.seed = 43;
        let c: Vec<_> = DistMonth::new(cfg)
            .all_events()
            .map(|e| event_key(&e))
            .collect();
        assert_ne!(a, c, "seed should matter");
    }

    #[test]
    fn dist_month_bursts_sit_inside_the_coordination_window() {
        let m = small_month();
        // Group burst-page events by page; each burst spans < 60 seconds.
        let organic_pages = m.config().organic_pages;
        let mut per_page: std::collections::HashMap<u32, Vec<i64>> = Default::default();
        for e in m.all_events() {
            if e.page.0 >= organic_pages {
                per_page.entry(e.page.0).or_default().push(e.ts);
            }
        }
        assert_eq!(
            per_page.len() as u32,
            m.config().n_cliques * m.config().bursts_per_clique
        );
        for (page, ts) in per_page {
            assert_eq!(ts.len() as u32, m.config().clique_size, "page {page}");
            let span = ts.iter().max().unwrap() - ts.iter().min().unwrap();
            assert!(span < 60, "page {page} burst spans {span}s");
        }
    }
}
