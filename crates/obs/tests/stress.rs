//! Concurrency stress for the metrics registry: rayon tasks hammering the
//! same counters and spans must merge to exact totals. Lives in its own
//! integration-test binary so the process-global registry isn't shared with
//! unrelated tests.

use rayon::prelude::*;

const TASKS: u64 = 64;
const INNER: u64 = 500;

#[test]
fn concurrent_spans_and_counters_merge_exactly() {
    obs::Obs::enable();
    obs::reset();

    let items = obs::counter("stress.items");
    let batches = obs::counter("stress.batches");
    let peak = obs::gauge("stress.peak");

    (0..TASKS).into_par_iter().for_each(|t| {
        let _outer = obs::span("stress");
        batches.inc();
        peak.set_max(t);
        for _ in 0..INNER {
            let _inner = obs::span("stress.inner");
            items.add(1);
        }
    });

    // Every task's outermost span has closed, so every thread-local buffer
    // has flushed: totals are exact, not approximate.
    let snap = obs::snapshot();
    assert_eq!(snap.counter("stress.items"), Some(TASKS * INNER));
    assert_eq!(snap.counter("stress.batches"), Some(TASKS));
    assert_eq!(snap.gauge("stress.peak"), Some(TASKS - 1));

    let outer = snap.span("stress").expect("outer span recorded");
    assert_eq!(outer.count, TASKS);
    let inner = snap.span("stress.inner").expect("inner span recorded");
    assert_eq!(inner.count, TASKS * INNER);
    assert!(inner.max_ns <= inner.total_ns);
    assert!(outer.total_ns > 0);

    // A second hammering round keeps accumulating (no reset in between).
    (0..TASKS).into_par_iter().for_each(|_| {
        let _outer = obs::span("stress");
        items.add(1);
    });
    let snap = obs::snapshot();
    assert_eq!(snap.counter("stress.items"), Some(TASKS * INNER + TASKS));
    assert_eq!(snap.span("stress").unwrap().count, 2 * TASKS);

    obs::Obs::disable();
    obs::reset();
}
