//! Machine-readable run reports: the registry serialized as stable JSON,
//! plus the validator CI runs against emitted reports.
//!
//! The document layout (`schema_version` [`SCHEMA_VERSION`]):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "command": "validate",
//!   "spans": [
//!     {"label": "project", "count": 1, "total_seconds": 0.031, "max_seconds": 0.031}
//!   ],
//!   "span_tree": [
//!     {"label": "project", "count": 1, "total_seconds": 0.031,
//!      "children": [{"label": "project.pairs", ...}]}
//!   ],
//!   "counters": {"ingest.lines": 120000, "ingest.skipped_lines": 0},
//!   "gauges": {"project.peak_rss_kb": 81234}
//! }
//! ```
//!
//! `spans` is the flat label-sorted list; `span_tree` nests the same entries
//! by dotted-label prefix (a label's parent is its longest proper dotted
//! prefix that was itself recorded). The tree is *label-structured*, not
//! strict-containment: a child recorded on rayon workers can total more than
//! its parent's wall time.

use crate::{Snapshot, SpanEntry};

/// Version stamp every report carries; bump on any layout change.
pub const SCHEMA_VERSION: u32 = 1;

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn span_fields(e: &SpanEntry) -> String {
    format!(
        "\"label\": \"{}\", \"count\": {}, \"total_seconds\": {:.6}, \"max_seconds\": {:.6}",
        escape(&e.label),
        e.stats.count,
        e.stats.total_seconds(),
        e.stats.max_seconds()
    )
}

/// `true` iff `child` is a dotted descendant of `parent`
/// (`"a.b.c"` under `"a.b"` and `"a"`, never under `"a.bc"`).
fn is_descendant(child: &str, parent: &str) -> bool {
    child.len() > parent.len()
        && child.starts_with(parent)
        && child.as_bytes()[parent.len()] == b'.'
}

/// Render the entries whose parent (longest recorded proper dotted prefix)
/// is `parent` (`None` = roots), recursively.
fn render_tree(entries: &[SpanEntry], parent: Option<&str>, indent: usize, out: &mut String) {
    let pad = " ".repeat(indent);
    let mut first = true;
    for (i, e) in entries.iter().enumerate() {
        // e's parent is the longest other label that is a dotted prefix.
        let actual_parent = entries
            .iter()
            .filter(|p| is_descendant(&e.label, &p.label))
            .max_by_key(|p| p.label.len())
            .map(|p| p.label.as_str());
        if actual_parent != parent {
            continue;
        }
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("{pad}{{{}", span_fields(e)));
        let has_children = entries
            .iter()
            .enumerate()
            .any(|(j, c)| j != i && is_descendant(&c.label, &e.label));
        if has_children {
            out.push_str(", \"children\": [\n");
            render_tree(entries, Some(&e.label), indent + 2, out);
            out.push_str(&format!("\n{pad}]}}"));
        } else {
            out.push_str(", \"children\": []}");
        }
    }
}

fn render_map(pairs: &[(String, u64)], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let body: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{pad}\"{}\": {v}", escape(k)))
        .collect();
    if body.is_empty() {
        "{}".to_string()
    } else {
        format!(
            "{{\n{}\n{}}}",
            body.join(",\n"),
            " ".repeat(indent.saturating_sub(2))
        )
    }
}

/// Serialize a snapshot as the schema-versioned run report.
pub fn render(command: &str, snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"command\": \"{}\",\n", escape(command)));
    out.push_str("  \"spans\": [\n");
    let rows: Vec<String> = snap
        .spans
        .iter()
        .map(|e| format!("    {{{}}}", span_fields(e)))
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"span_tree\": [\n");
    let mut tree = String::new();
    render_tree(&snap.spans, None, 4, &mut tree);
    out.push_str(&tree);
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"counters\": {},\n",
        render_map(&snap.counters, 4)
    ));
    out.push_str(&format!("  \"gauges\": {}\n", render_map(&snap.gauges, 4)));
    out.push_str("}\n");
    out
}

/// [`render`] over the live registry (see [`crate::snapshot`]).
pub fn render_current(command: &str) -> String {
    render(command, &crate::snapshot())
}

/// Extract the `schema_version` value from an emitted report, textually.
/// `None` when the field is absent or its value is not an unsigned integer.
fn parse_schema_version(json: &str) -> Option<u64> {
    let at = json.find("\"schema_version\"")?;
    let rest = json[at + "\"schema_version\"".len()..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let digits: &str = &rest[..rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len())];
    digits.parse().ok()
}

/// Validate an emitted run report: it must carry `schema_version` equal to
/// this build's [`SCHEMA_VERSION`] (a report from a future or unknown layout
/// is rejected, not half-checked), a span entry for every label in
/// `required_spans`, and an entry (even `0`) for every counter in
/// `required_counters`. Returns every violation at once so a CI failure
/// names the full gap, not just the first one.
///
/// The checks are textual against the layout [`render`] produces — this
/// crate has no JSON parser by design, and it validates only its own output.
pub fn validate(
    json: &str,
    required_spans: &[&str],
    required_counters: &[&str],
) -> Result<(), String> {
    match parse_schema_version(json) {
        Some(v) if v == SCHEMA_VERSION as u64 => {}
        Some(v) => {
            return Err(format!(
                "unsupported report schema_version {v} (this build understands \
                 {SCHEMA_VERSION}); re-run the report with a matching build"
            ));
        }
        None => {
            return Err("report carries no integer schema_version field; \
                 not a run report this build can validate"
                .to_string());
        }
    }
    let mut missing = Vec::new();
    for s in required_spans {
        if !json.contains(&format!("\"label\": \"{s}\"")) {
            missing.push(format!("stage span {s:?}"));
        }
    }
    for c in required_counters {
        if !json.contains(&format!("\"{c}\":")) {
            missing.push(format!("counter {c:?}"));
        }
    }
    if missing.is_empty() {
        Ok(())
    } else {
        Err(format!("report is missing: {}", missing.join(", ")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SpanEntry, SpanStats};

    fn entry(label: &str, count: u64, total_ns: u64) -> SpanEntry {
        SpanEntry {
            label: label.to_string(),
            stats: SpanStats {
                count,
                total_ns,
                max_ns: total_ns,
            },
        }
    }

    fn sample() -> Snapshot {
        Snapshot {
            spans: vec![
                entry("ingest", 1, 5_000_000),
                entry("ingest.merge", 1, 1_000_000),
                entry("ingest.parse", 4, 3_000_000),
                entry("project", 1, 9_000_000),
            ],
            counters: vec![
                ("ingest.lines".to_string(), 100),
                ("ingest.skipped_lines".to_string(), 0),
            ],
            gauges: vec![("project.peak_rss_kb".to_string(), 4096)],
        }
    }

    #[test]
    fn report_has_schema_and_sections() {
        let json = render("validate", &sample());
        assert!(json.contains(&format!("\"schema_version\": {SCHEMA_VERSION}")));
        assert!(json.contains("\"command\": \"validate\""));
        assert!(json.contains("\"label\": \"ingest\""));
        assert!(json.contains("\"ingest.skipped_lines\": 0"));
        assert!(json.contains("\"project.peak_rss_kb\": 4096"));
    }

    #[test]
    fn tree_nests_children_under_dotted_prefixes() {
        let json = render("x", &sample());
        // children appear inside the parent node, after its fields
        let tree_at = json.find("\"span_tree\"").unwrap();
        let ingest_at = json[tree_at..].find("\"label\": \"ingest\"").unwrap();
        let merge_at = json[tree_at..].find("\"label\": \"ingest.merge\"").unwrap();
        let project_at = json[tree_at..].find("\"label\": \"project\"").unwrap();
        assert!(ingest_at < merge_at && merge_at < project_at);
        assert!(json[tree_at + ingest_at..tree_at + merge_at].contains("\"children\": [\n"));
    }

    #[test]
    fn sibling_prefix_is_not_a_parent() {
        assert!(is_descendant("a.b.c", "a.b"));
        assert!(is_descendant("a.b", "a"));
        assert!(!is_descendant("a.bc", "a.b"));
        assert!(!is_descendant("a", "a"));
    }

    #[test]
    fn validate_passes_on_complete_and_fails_on_missing() {
        let json = render("validate", &sample());
        assert!(validate(
            &json,
            &["ingest", "project"],
            &["ingest.lines", "ingest.skipped_lines"]
        )
        .is_ok());
        let err = validate(&json, &["ingest", "survey"], &["survey.triangles_kept"]).unwrap_err();
        assert!(err.contains("stage span \"survey\""), "{err}");
        assert!(err.contains("counter \"survey.triangles_kept\""), "{err}");
        assert!(validate("{}", &[], &[]).is_err(), "no schema_version");
    }

    #[test]
    fn validate_rejects_unknown_schema_versions() {
        let json = render("validate", &sample());
        let future = json.replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            &format!("\"schema_version\": {}", SCHEMA_VERSION + 1),
        );
        let err = validate(&future, &[], &[]).unwrap_err();
        assert!(
            err.contains(&format!("schema_version {}", SCHEMA_VERSION + 1)),
            "{err}"
        );
        assert!(err.contains(&SCHEMA_VERSION.to_string()), "{err}");

        let garbage = json.replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": \"one\"",
        );
        assert!(validate(&garbage, &[], &[]).is_err(), "non-integer version");
        assert_eq!(parse_schema_version(&json), Some(SCHEMA_VERSION as u64));
    }

    #[test]
    fn strings_are_escaped() {
        let snap = Snapshot {
            spans: vec![],
            counters: vec![("weird\"name\\x".to_string(), 1)],
            gauges: vec![],
        };
        let json = render("cmd\"quoted", &snap);
        assert!(json.contains("cmd\\\"quoted"));
        assert!(json.contains("weird\\\"name\\\\x"));
    }
}
