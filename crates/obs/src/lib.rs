//! # obs — pipeline observability: spans, counters, gauges, run reports
//!
//! A zero-dependency instrumentation layer shared by every stage of the
//! detection pipeline. Three pieces:
//!
//! * **Timing spans** ([`span`]): RAII guards keyed by dotted labels
//!   (`"project.pairs"` is a child of `"project"` in the report tree). Each
//!   span records into a **thread-local buffer**; the buffer is merged into
//!   the global registry only when the thread's *outermost* span closes, so
//!   rayon hot paths never contend on a lock per span. The invariant: once
//!   every scope on every thread has exited, the global totals are exact
//!   (see DESIGN.md, "span-merge invariant").
//! * **Counters and gauges** ([`counter`], [`gauge`]): named `AtomicU64`s in
//!   a global registry. Handles are cheap to clone and store; `add`/`set`
//!   are a relaxed atomic when enabled and a single branch when disabled.
//!   Registration is permanent, so a documented counter shows up in the run
//!   report (as `0`) even on runs that never increment it.
//! * **Run reports** ([`report`]): the registry serialized as a stable,
//!   `schema_version`-ed JSON document — flat span list, nested span tree,
//!   counter and gauge maps — plus a validator CI uses to fail runs whose
//!   reports lost a registered stage span or documented counter.
//!
//! Instrumentation is compiled in but **off by default**: [`Obs::disabled`]
//! is the no-op path (a relaxed atomic load per call site), benchmarked at
//! well under 2% overhead on the pipeline stages. [`Obs::enable`] turns
//! recording on (the CLI does this for `--report` / `--progress`).
//!
//! ```
//! obs::Obs::enable();
//! {
//!     let _stage = obs::span("demo");
//!     obs::counter("demo.items").add(3);
//! }
//! let snap = obs::snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert_eq!(snap.span("demo").unwrap().count, 1);
//! # obs::Obs::disable();
//! # obs::reset();
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

pub mod report;

// ---------------------------------------------------------------- registry

struct Registry {
    enabled: AtomicBool,
    progress: AtomicBool,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    spans: Mutex<BTreeMap<&'static str, SpanStats>>,
}

static REGISTRY: Registry = Registry {
    enabled: AtomicBool::new(false),
    progress: AtomicBool::new(false),
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    spans: Mutex::new(BTreeMap::new()),
};

/// Global on/off switch for the instrumentation layer.
///
/// The *disabled* state (the default) is the no-op path: spans skip the
/// clock reads, counter/gauge writes reduce to one relaxed load and a
/// branch. Enabling is process-wide and affects all threads.
pub struct Obs;

impl Obs {
    /// Turn recording on (spans, counters, gauges all start accumulating).
    pub fn enable() {
        REGISTRY.enabled.store(true, Ordering::Relaxed);
    }

    /// Turn recording off — every instrumentation call becomes a no-op.
    pub fn disable() {
        REGISTRY.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether the no-op path is active (the default).
    pub fn disabled() -> bool {
        !REGISTRY.enabled.load(Ordering::Relaxed)
    }

    /// Whether recording is active.
    pub fn enabled() -> bool {
        REGISTRY.enabled.load(Ordering::Relaxed)
    }

    /// Toggle live per-stage progress lines on stderr (top-level spans only).
    pub fn set_progress(on: bool) {
        REGISTRY.progress.store(on, Ordering::Relaxed);
    }

    /// Whether progress rendering is on.
    pub fn progress() -> bool {
        REGISTRY.progress.load(Ordering::Relaxed)
    }
}

/// Clear every recorded value: span stats are dropped, counters and gauges
/// are reset to 0 **but stay registered** (outstanding handles keep working
/// and documented names keep appearing in reports).
pub fn reset() {
    REGISTRY.spans.lock().unwrap().clear();
    for slot in REGISTRY.counters.lock().unwrap().values() {
        slot.store(0, Ordering::Relaxed);
    }
    for slot in REGISTRY.gauges.lock().unwrap().values() {
        slot.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------- counters

/// Handle to a named monotonic counter. Cloning is cheap (an `Arc` bump);
/// stages that increment on a hot path should hold the handle in a field
/// rather than re-looking it up by name.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` (no-op while disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if Obs::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 (no-op while disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Get (registering on first use) the counter named `name`. Names are dotted
/// paths whose first segment is the owning stage (`"ingest.skipped_lines"`).
pub fn counter(name: &str) -> Counter {
    let mut map = REGISTRY.counters.lock().unwrap();
    if let Some(slot) = map.get(name) {
        return Counter(Arc::clone(slot));
    }
    let slot = Arc::new(AtomicU64::new(0));
    map.insert(name.to_owned(), Arc::clone(&slot));
    Counter(slot)
}

/// Handle to a named gauge (last-value or running-max semantics, caller's
/// choice of `set` vs `set_max`).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrite the value (no-op while disabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if Obs::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the value to at least `v` (no-op while disabled).
    #[inline]
    pub fn set_max(&self, v: u64) {
        if Obs::enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Get (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    let mut map = REGISTRY.gauges.lock().unwrap();
    if let Some(slot) = map.get(name) {
        return Gauge(Arc::clone(slot));
    }
    let slot = Arc::new(AtomicU64::new(0));
    map.insert(name.to_owned(), Arc::clone(&slot));
    Gauge(slot)
}

// ---------------------------------------------------------------- spans

/// Aggregated statistics of one span label.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Times the span was entered.
    pub count: u64,
    /// Total time inside the span, summed over entries and threads.
    pub total_ns: u64,
    /// Longest single entry.
    pub max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.max_ns = self.max_ns.max(elapsed_ns);
    }

    fn merge(&mut self, other: &SpanStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Longest entry in seconds.
    pub fn max_seconds(&self) -> f64 {
        self.max_ns as f64 / 1e9
    }
}

/// Per-thread span buffer. `depth` counts live guards on this thread; the
/// buffer flushes into the global registry when depth returns to zero, so a
/// rayon worker grinding through thousands of inner spans takes the global
/// lock once per task, not once per span.
///
/// The same invariant covers SPMD rank threads (`ygm::World::run` spawns one
/// scoped OS thread per rank): each rank's spans buffer locally and merge
/// into the global registry when the rank's outermost span closes, and
/// counters are global atomics shared by all ranks. After the world exits,
/// a span entered once per rank reports `count == nranks` with `total_ns`
/// summed across ranks, and per-rank counter increments are one global sum —
/// no per-rank registry and no manual merge step. Pinned by
/// `rank_threads_merge_spans_and_counters` below.
#[derive(Default)]
struct LocalSpans {
    depth: u32,
    buf: Vec<(&'static str, SpanStats)>,
}

thread_local! {
    static LOCAL: RefCell<LocalSpans> = RefCell::new(LocalSpans::default());
}

/// RAII timing guard returned by [`span`]. Records on drop; does nothing if
/// instrumentation was disabled when it was created.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    label: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        LOCAL.with(|cell| {
            let mut local = cell.borrow_mut();
            let elapsed_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
            match local.buf.iter_mut().find(|(l, _)| *l == self.label) {
                Some((_, stats)) => stats.record(elapsed_ns),
                None => {
                    let mut stats = SpanStats::default();
                    stats.record(elapsed_ns);
                    local.buf.push((self.label, stats));
                }
            }
            local.depth -= 1;
            if local.depth == 0 {
                flush_local(&mut local);
            }
        });
        // Top-level stages (undotted labels) double as progress lines.
        if Obs::progress() && !self.label.contains('.') {
            eprintln!("[obs] {}: {:.3}s", self.label, elapsed.as_secs_f64());
        }
    }
}

fn flush_local(local: &mut LocalSpans) {
    let mut global = REGISTRY.spans.lock().unwrap();
    for (label, stats) in local.buf.drain(..) {
        global.entry(label).or_default().merge(&stats);
    }
}

/// Open a timing span. Labels must be `'static` dotted paths; the segment
/// structure is what the report's span tree nests on, so a kernel inside the
/// projection stage is `"project.pairs"`, not `"pairs"`.
#[inline]
pub fn span(label: &'static str) -> SpanGuard {
    if !Obs::enabled() {
        return SpanGuard { label, start: None };
    }
    LOCAL.with(|cell| cell.borrow_mut().depth += 1);
    SpanGuard {
        label,
        start: Some(Instant::now()),
    }
}

// ---------------------------------------------------------------- snapshot

/// One span label's aggregated stats, by label.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEntry {
    /// Dotted span label.
    pub label: String,
    /// Aggregated stats.
    pub stats: SpanStats,
}

/// A point-in-time copy of the whole registry, label-sorted.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Every span label recorded so far.
    pub spans: Vec<SpanEntry>,
    /// Every registered counter and its value.
    pub counters: Vec<(String, u64)>,
    /// Every registered gauge and its value.
    pub gauges: Vec<(String, u64)>,
}

impl Snapshot {
    /// Look up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Look up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Look up a span's stats by label.
    pub fn span(&self, label: &str) -> Option<&SpanStats> {
        self.spans
            .iter()
            .find(|e| e.label == label)
            .map(|e| &e.stats)
    }
}

/// Copy the registry out. Spans still open on other threads (or buffered
/// under an open outer span) are not included — take snapshots after the
/// instrumented scopes have closed.
pub fn snapshot() -> Snapshot {
    // The current thread may hold merged-but-unflushed stats only while a
    // span is open on it, in which case the caller is snapshotting mid-scope
    // and partial numbers are expected; nothing to flush here (depth > 0
    // buffers flush when their outermost guard drops).
    let spans = REGISTRY
        .spans
        .lock()
        .unwrap()
        .iter()
        .map(|(label, stats)| SpanEntry {
            label: (*label).to_owned(),
            stats: *stats,
        })
        .collect();
    let counters = REGISTRY
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
        .collect();
    let gauges = REGISTRY
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(n, v)| (n.clone(), v.load(Ordering::Relaxed)))
        .collect();
    Snapshot {
        spans,
        counters,
        gauges,
    }
}

// ---------------------------------------------------------------- helpers

/// The process's peak resident set in kB (`VmHWM` from `/proc/self/status`),
/// or `None` where procfs is unavailable. Nominally monotone over the process
/// lifetime, but the kernel syncs per-thread RSS counters lazily (split RSS
/// accounting), so consecutive reads may jitter by a few hundred kB — treat
/// per-stage gauges as "peak RSS by about the end of this stage".
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.trim().trim_end_matches("kB").trim().parse().ok();
        }
    }
    None
}

/// Record `<stage>.peak_rss_kb` for a stage that just finished (no-op while
/// disabled or where procfs is missing).
pub fn record_stage_rss(stage: &str) {
    if !Obs::enabled() {
        return;
    }
    if let Some(kb) = peak_rss_kb() {
        gauge(&format!("{stage}.peak_rss_kb")).set_max(kb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global and `cargo test` runs tests on several
    // threads; serialize the tests that toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn obs_disabled_records_nothing() {
        let _g = locked();
        Obs::disable();
        reset();
        assert!(Obs::disabled());
        {
            let _s = span("disabled_stage");
            let _inner = span("disabled_stage.kernel");
            counter("disabled_stage.items").add(17);
            gauge("disabled_stage.level").set(5);
            gauge("disabled_stage.level").set_max(9);
        }
        let snap = snapshot();
        assert!(snap.span("disabled_stage").is_none(), "no span recorded");
        assert!(snap.span("disabled_stage.kernel").is_none());
        assert_eq!(
            snap.counter("disabled_stage.items"),
            Some(0),
            "counter registered but never incremented"
        );
        assert_eq!(snap.gauge("disabled_stage.level"), Some(0));
    }

    #[test]
    fn enabled_spans_and_counters_accumulate() {
        let _g = locked();
        Obs::enable();
        reset();
        for _ in 0..3 {
            let _outer = span("stage_a");
            let _inner = span("stage_a.kernel");
            counter("stage_a.items").add(2);
        }
        Obs::disable();
        let snap = snapshot();
        let outer = snap.span("stage_a").unwrap();
        assert_eq!(outer.count, 3);
        assert!(outer.total_ns >= outer.max_ns);
        assert_eq!(snap.span("stage_a.kernel").unwrap().count, 3);
        assert_eq!(snap.counter("stage_a.items"), Some(6));
        reset();
        assert!(snapshot().span("stage_a").is_none());
        assert_eq!(snapshot().counter("stage_a.items"), Some(0));
    }

    #[test]
    fn handles_survive_reset() {
        let _g = locked();
        Obs::enable();
        reset();
        let c = counter("resettable.count");
        c.add(4);
        reset();
        c.add(1);
        assert_eq!(c.get(), 1);
        assert_eq!(snapshot().counter("resettable.count"), Some(1));
        Obs::disable();
        reset();
    }

    #[test]
    fn rank_threads_merge_spans_and_counters() {
        // The SPMD shape: N scoped worker threads (exactly what
        // `ygm::World::run` spawns, one per rank), each opening the same
        // stage span and bumping the same counter. Once every thread's
        // outermost span has closed, the global registry holds the merged
        // totals — count per entry, time summed across threads.
        let _g = locked();
        Obs::enable();
        reset();
        const NRANKS: usize = 4;
        std::thread::scope(|s| {
            for rank in 0..NRANKS {
                s.spawn(move || {
                    let _stage = span("rank_stage");
                    let _inner = span("rank_stage.kernel");
                    counter("rank_stage.items").add(rank as u64 + 1);
                });
            }
        });
        Obs::disable();
        let snap = snapshot();
        let stage = snap.span("rank_stage").unwrap();
        assert_eq!(stage.count, NRANKS as u64, "one entry per rank thread");
        assert!(stage.total_ns >= stage.max_ns);
        assert_eq!(snap.span("rank_stage.kernel").unwrap().count, NRANKS as u64);
        assert_eq!(
            snap.counter("rank_stage.items"),
            Some((1..=NRANKS as u64).sum()),
            "per-rank increments sum into one global counter"
        );
        reset();
    }

    #[test]
    fn gauge_set_max_keeps_the_peak() {
        let _g = locked();
        Obs::enable();
        reset();
        let g = gauge("peaky");
        g.set_max(10);
        g.set_max(3);
        assert_eq!(g.get(), 10);
        g.set(2);
        assert_eq!(g.get(), 2);
        Obs::disable();
        reset();
    }
}
