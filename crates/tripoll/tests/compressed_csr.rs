//! Surveying directly over the snapshot layer's block-compressed CSR
//! ([`coordination_store::CsrView`]) must agree with surveying the resident
//! [`WeightedGraph`] — the view implements [`GraphRef`], so
//! [`OrientedGraph::from_ref`] consumes either without a decode step.

use coordination_store::csr::encode_graph;
use coordination_store::CsrView;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tripoll::survey::survey;
use tripoll::{GraphRef, OrientedGraph, SurveyConfig, WeightedGraph};

fn random_graph(seed: u64, n: u32, m: usize) -> WeightedGraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let mut seen = std::collections::HashSet::new();
    while edges.len() < m {
        let x = rng.gen_range(0..n);
        let y = rng.gen_range(0..n);
        if x == y {
            continue;
        }
        let (a, b) = (x.min(y), x.max(y));
        if seen.insert((a, b)) {
            edges.push((a, b, rng.gen_range(1..40u64)));
        }
    }
    WeightedGraph::from_edges(n, edges)
}

fn assert_same_survey(g: &WeightedGraph, cfg: &SurveyConfig) {
    let mut blob = Vec::new();
    encode_graph(g, &mut blob);
    let view = CsrView::parse(&blob).expect("fresh encoding parses");
    view.validate(g.n_vertices())
        .expect("fresh encoding validates");
    assert_eq!(view.n(), g.n_vertices());
    assert_eq!(view.count_edges(), g.count_edges());

    let resident = survey(&OrientedGraph::from_graph(g), cfg, None);
    let mapped = survey(&OrientedGraph::from_ref(&view), cfg, None);

    assert_eq!(resident.total_examined, mapped.total_examined);
    assert_eq!(resident.len(), mapped.len());
    let key = |t: &tripoll::SurveyedTriangle| (t.triangle.vertices(), t.min_weight);
    let mut a: Vec<_> = resident.triangles.iter().map(key).collect();
    let mut b: Vec<_> = mapped.triangles.iter().map(key).collect();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b);
}

#[test]
fn survey_over_compressed_csr_matches_resident() {
    for (seed, n, m) in [(1u64, 40u32, 220usize), (2, 150, 1600), (3, 9, 30)] {
        let g = random_graph(seed, n, m);
        for min_w in [0u64, 5, 20] {
            assert_same_survey(&g, &SurveyConfig::with_min_weight(min_w));
        }
    }
}

#[test]
fn distributed_survey_over_compressed_csr_matches_resident() {
    // The distributed driver must accept an orientation built straight off
    // the mmap-format CSR view, at any rank count, and agree with the
    // resident shared-memory enumeration.
    for (seed, n, m) in [(11u64, 40u32, 220usize), (12, 120, 1200)] {
        let g = random_graph(seed, n, m);
        let mut blob = Vec::new();
        encode_graph(&g, &mut blob);
        let view = CsrView::parse(&blob).expect("fresh encoding parses");

        let resident = OrientedGraph::from_graph(&g);
        let mut expected = Vec::new();
        tripoll::enumerate::for_each_triangle(&resident, |t| expected.push(t));
        expected.sort_unstable_by_key(|t| t.vertices());

        let mapped = OrientedGraph::from_ref(&view);
        for nranks in [1usize, 2, 4] {
            for cutoff in [1u64, 10] {
                let res = tripoll::distributed::distributed_survey(&mapped, cutoff, nranks);
                let want: Vec<_> = expected
                    .iter()
                    .copied()
                    .filter(|t| t.min_weight() >= cutoff)
                    .collect();
                assert_eq!(res.triangles, want, "seed {seed} ranks {nranks}");
                assert_eq!(res.total_triangles, expected.len() as u64);
            }
        }
    }
}

#[test]
fn composable_survey_stage_runs_over_compressed_csr() {
    // The promoted stage API (load_oriented + survey_stage inside one SPMD
    // region) over the compressed view: same triangles as a full survey.
    use std::sync::Arc;
    use tripoll::{load_oriented, survey_stage, DistAdjacency, Triangle};
    use ygm::container::{DistBag, DistMap};
    use ygm::World;

    let g = random_graph(13, 80, 700);
    let mut blob = Vec::new();
    encode_graph(&g, &mut blob);
    let view = CsrView::parse(&blob).unwrap();
    let oriented = Arc::new(OrientedGraph::from_ref(&view));

    let nranks = 3;
    let adjacency: DistAdjacency = DistMap::new(nranks);
    let found: DistBag<Triangle> = DistBag::new(nranks);
    {
        let adjacency = adjacency.clone();
        let found = found.clone();
        let oriented = Arc::clone(&oriented);
        World::run(nranks, move |ctx| {
            load_oriented(ctx, &oriented, &adjacency);
            ctx.barrier();
            survey_stage(ctx, &adjacency, &found);
            ctx.barrier();
        });
    }
    let mut got = found.drain_into_local();
    got.sort_unstable_by_key(|t| t.vertices());

    let mut expected = Vec::new();
    tripoll::enumerate::for_each_triangle(&OrientedGraph::from_graph(&g), |t| expected.push(t));
    expected.sort_unstable_by_key(|t| t.vertices());
    assert_eq!(got, expected);
}

#[test]
fn neighbor_blocks_roundtrip_against_resident_adjacency() {
    // Degrees beyond one compressed block (128 entries) must decode exactly.
    let g = random_graph(7, 600, 24_000);
    let mut blob = Vec::new();
    encode_graph(&g, &mut blob);
    let view = CsrView::parse(&blob).unwrap();
    for u in 0..g.n_vertices() {
        let mut want: Vec<(u32, u64)> = g.neighbors_iter(u).collect();
        let mut got: Vec<(u32, u64)> = view.neighbors_iter(u).collect();
        want.sort_unstable();
        got.sort_unstable();
        assert_eq!(want, got, "vertex {u}");
    }
}
