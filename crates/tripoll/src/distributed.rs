//! Distributed triangle surveying over the [`ygm`] runtime.
//!
//! This driver reproduces the *communication structure* of real TriPoll's
//! push-based algorithm: the oriented adjacency is partitioned across ranks by
//! vertex hash; the rank owning wedge apex `u` pushes, for each oriented edge
//! `(u, v)`, a *wedge-check* message carrying `out(u)` to the owner of `v`,
//! which intersects it against its local `out(v)` and emits the closed
//! triangles into a distributed bag. A single barrier separates the push
//! superstep from result extraction.
//!
//! On one node this is slower than the shared-memory rayon driver in
//! [`crate::enumerate`] (every wedge list is boxed into a message), but it
//! demonstrates and tests the exact program the paper ran on MPI clusters.

use std::sync::Arc;

use ygm::container::{DistBag, DistMap};
use ygm::partition::owner_of;
use ygm::{Aggregator, RankCtx, World};

use crate::enumerate::Triangle;
use crate::orient::OrientedGraph;

/// The partitioned oriented adjacency the distributed survey consumes:
/// vertex → out-list (sorted by target id), hash-partitioned by vertex id
/// with [`ygm::owner_of`]. Out-lists are `Arc`'d because the push superstep
/// ships them in wedge-check messages.
pub type DistAdjacency = DistMap<u32, Arc<Vec<(u32, u64)>>>;

/// Load a resident [`OrientedGraph`] into a [`DistAdjacency`], each rank
/// inserting the out-lists of the vertices it owns. SPMD stage: call from
/// every rank, then `ctx.barrier()` before surveying. Vertices with empty
/// out-lists are skipped — the survey treats a missing entry as empty.
pub fn load_oriented(ctx: &RankCtx, oriented: &OrientedGraph, adjacency: &DistAdjacency) {
    for u in 0..oriented.n() {
        if owner_of(&u, ctx.nranks()) == ctx.rank() {
            let (nbrs, ws) = oriented.out(u);
            if nbrs.is_empty() {
                continue;
            }
            let list: Vec<(u32, u64)> = nbrs.iter().copied().zip(ws.iter().copied()).collect();
            adjacency.async_insert(ctx, u, Arc::new(list));
        }
    }
}

/// One wedge-check request: close wedges through apex `u` at the owner of
/// `v`. The `Arc` makes staging a request one pointer bump — the out-list is
/// shared, never copied per edge.
type WedgeCheck = (u32, u32, u64, Arc<Vec<(u32, u64)>>);

/// The TriPoll push superstep as a *composable* SPMD stage: for each owned
/// apex `u` and oriented edge `(u, v)`, ship the wedge list `out(u)` to the
/// owner of `v`, which intersects it against its local `out(v)` and emits
/// every closed triangle into `found` exactly once (on the closing rank).
///
/// Wedge-check requests are batched through an [`Aggregator`] with the
/// adaptive bytes-per-batch threshold rather than sent one active message
/// per oriented edge, so the per-message overhead (boxed closure + channel
/// send + termination-detection counters) is paid once per batch. Each
/// request carries its `out(u)` as an `Arc` clone — one pointer bump per
/// edge, the list itself is shipped once per batch destination.
///
/// This is the building block larger SPMD programs (e.g.
/// `coordination_core`'s distributed pipeline) embed between their own
/// stages; [`distributed_survey`] is the self-contained wrapper around it.
/// The caller must follow with `ctx.barrier()` before reading `found` —
/// wedge-check messages are only guaranteed delivered once the barrier's
/// termination detection has drained them.
pub fn survey_stage(ctx: &RankCtx, adjacency: &DistAdjacency, found: &DistBag<Triangle>) {
    let adj = adjacency.clone();
    let bag = found.clone();
    let mut checks = Aggregator::adaptive(
        ctx,
        move |inner: &RankCtx, (u, v, w_uv, out_u): WedgeCheck| {
            // Owner of v closes wedges: intersect out(u) with out(v).
            let Some(out_v) = adj.global_get(&v) else {
                return;
            };
            let mut ai = 0;
            let mut bi = 0;
            while ai < out_u.len() && bi < out_v.len() {
                let (x, w_ux) = out_u[ai];
                let (y, w_vy) = out_v[bi];
                if x == v {
                    ai += 1;
                    continue;
                }
                match x.cmp(&y) {
                    std::cmp::Ordering::Less => ai += 1,
                    std::cmp::Ordering::Greater => bi += 1,
                    std::cmp::Ordering::Equal => {
                        let t = Triangle::new(u, v, x, w_uv, w_ux, w_vy);
                        bag.local_insert(inner, t);
                        ai += 1;
                        bi += 1;
                    }
                }
            }
        },
    );
    adjacency.local_for_each(ctx, |&u, out_u| {
        for &(v, w_uv) in out_u.iter() {
            checks.push_keyed(ctx, &v, (u, v, w_uv, Arc::clone(out_u)));
        }
    });
    checks.flush_all(ctx);
}

/// Result of a distributed survey.
#[derive(Clone, Debug)]
pub struct DistSurveyResult {
    /// Triangles with `min_weight >= cutoff`, sorted by vertex triple.
    pub triangles: Vec<Triangle>,
    /// Total triangles in the graph (before the cutoff).
    pub total_triangles: u64,
    /// Total active messages the run sent (a proxy for MPI traffic).
    pub messages_sent: u64,
}

/// Enumerate all triangles with minimum edge weight `>= cutoff` using
/// `nranks` ygm ranks.
pub fn distributed_survey(
    oriented: &OrientedGraph,
    cutoff: u64,
    nranks: usize,
) -> DistSurveyResult {
    // Distribute the oriented adjacency: vertex → out-list.
    let adjacency: DistAdjacency = DistMap::new(nranks);
    let found: DistBag<Triangle> = DistBag::new(nranks);

    // Stage the adjacency once, outside the SPMD region, directly into the
    // owner shards (simulating the graph already being loaded in place).
    {
        let staging = World::new(nranks);
        let o = &oriented;
        let lm = &adjacency;
        staging.launch(move |ctx| {
            load_oriented(ctx, o, lm);
            ctx.barrier();
        });
    }

    let adjacency2 = adjacency.clone();
    let found2 = found.clone();
    let per_rank: Vec<(u64, u64)> = World::run(nranks, move |ctx| {
        let mut local_total = 0u64;
        survey_stage(ctx, &adjacency2, &found2);
        ctx.barrier();
        // Count and locally filter.
        let mine = found2.local_take(ctx);
        local_total += mine.len() as u64;
        for t in &mine {
            if t.min_weight() >= cutoff {
                found2.local_insert(ctx, *t);
            }
        }
        ctx.barrier();
        (local_total, ctx.messages_sent())
    });

    let total_triangles: u64 = per_rank.iter().map(|&(t, _)| t).sum();
    let messages_sent = per_rank.iter().map(|&(_, m)| m).max().unwrap_or(0);
    let mut triangles = found.drain_into_local();
    triangles.sort_unstable_by_key(|t| t.vertices());
    DistSurveyResult {
        triangles,
        total_triangles,
        messages_sent,
    }
}

/// Distributed connected components by min-label propagation over the ygm
/// runtime — the distributed path for the paper's botnet-component extraction
/// (Figures 1–2 ran on billion-edge graphs where a single-node union-find is
/// not an option). Considers only edges with `weight >= min_weight`; returns
/// components with ≥ 2 vertices, largest first, matching
/// [`crate::graph::WeightedGraph::components`] exactly.
pub fn distributed_components(
    g: &crate::graph::WeightedGraph,
    min_weight: u64,
    nranks: usize,
) -> Vec<Vec<u32>> {
    use ygm::container::DistArray;
    use ygm::partition::block_range;

    let n = g.n() as usize;
    if n == 0 {
        return Vec::new();
    }
    let labels: DistArray<u32> = DistArray::new(nranks, n, 0);
    {
        // initialize label[v] = v on each owner
        let labels = labels.clone();
        World::run(nranks, move |ctx| {
            let r = block_range(ctx.rank(), n, ctx.nranks());
            for v in r {
                labels.async_set(ctx, v, v as u32);
            }
            ctx.barrier();
        });
    }
    // propagate until a full round changes nothing
    let labels2 = labels.clone();
    World::run(nranks, move |ctx| {
        loop {
            // push phase: offer this round's label to every neighbor
            let r = block_range(ctx.rank(), n, ctx.nranks());
            for u in r {
                let my_label = labels2.global_get(u); // own block: local read
                let (nbrs, ws) = g.neighbors(u as u32);
                for (&v, &w) in nbrs.iter().zip(ws) {
                    if w < min_weight {
                        continue;
                    }
                    labels2.async_visit(ctx, v as usize, move |_, l| {
                        if my_label < *l {
                            *l = my_label;
                        }
                    });
                }
            }
            ctx.barrier();
            // convergence check: did any label actually change this round?
            let mut changed = 0u64;
            let r = block_range(ctx.rank(), n, ctx.nranks());
            for u in r {
                let l = labels2.global_get(u) as usize;
                // a label is stable when it equals the min over the closed
                // neighborhood (within the thresholded graph)
                let (nbrs, ws) = g.neighbors(u as u32);
                let min_nbr = nbrs
                    .iter()
                    .zip(ws)
                    .filter(|&(_, &w)| w >= min_weight)
                    .map(|(&v, _)| labels2.global_get(v as usize))
                    .min()
                    .unwrap_or(u32::MAX);
                if min_nbr < l as u32 {
                    changed += 1;
                }
            }
            if ctx.all_reduce_sum(changed) == 0 {
                break;
            }
        }
    });
    // group by final label
    let final_labels = labels.gather();
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
    for (v, &l) in final_labels.iter().enumerate() {
        groups.entry(l).or_default().push(v as u32);
    }
    let mut comps: Vec<Vec<u32>> = groups.into_values().filter(|c| c.len() >= 2).collect();
    for c in &mut comps {
        c.sort_unstable();
    }
    comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    fn random_graph(n: u32, p: f64, seed: u64) -> WeightedGraph {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(p) {
                    edges.push((a, b, rng.gen_range(1..20u64)));
                }
            }
        }
        WeightedGraph::from_edges(n, edges)
    }

    #[test]
    fn distributed_matches_shared_memory_enumeration() {
        for seed in 0..5 {
            let g = random_graph(40, 0.2, seed);
            let o = OrientedGraph::from_graph(&g);
            let mut expected = Vec::new();
            crate::enumerate::for_each_triangle(&o, |t| expected.push(t));
            expected.sort_unstable_by_key(|t| t.vertices());

            let res = distributed_survey(&o, 1, 4);
            assert_eq!(res.triangles, expected, "seed {seed}");
            assert_eq!(res.total_triangles, expected.len() as u64);
        }
    }

    #[test]
    fn cutoff_is_applied() {
        let g = WeightedGraph::from_edges(
            5,
            [
                (0, 1, 10),
                (0, 2, 12),
                (1, 2, 15),
                (2, 3, 2),
                (2, 4, 3),
                (3, 4, 5),
            ],
        );
        let o = OrientedGraph::from_graph(&g);
        let res = distributed_survey(&o, 5, 3);
        assert_eq!(res.total_triangles, 2);
        assert_eq!(res.triangles.len(), 1);
        assert_eq!(res.triangles[0].vertices(), [0, 1, 2]);
    }

    #[test]
    fn works_with_one_rank_and_empty_graph() {
        let g = WeightedGraph::from_edges(4, std::iter::empty());
        let o = OrientedGraph::from_graph(&g);
        let res = distributed_survey(&o, 1, 1);
        assert!(res.triangles.is_empty());
        assert_eq!(res.total_triangles, 0);
    }

    #[test]
    fn distributed_components_match_union_find() {
        for seed in 0..5 {
            let g = random_graph(50, 0.04, seed + 200);
            for min_weight in [1u64, 5, 10] {
                let expect = g.components(min_weight);
                let got = distributed_components(&g, min_weight, 4);
                assert_eq!(got, expect, "seed {seed} min_weight {min_weight}");
            }
        }
    }

    #[test]
    fn distributed_components_on_a_long_path() {
        // a path stresses propagation rounds (diameter = n-1)
        let n = 60u32;
        let g = WeightedGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1, 1u64)));
        let got = distributed_components(&g, 1, 3);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn distributed_components_empty_and_edgeless() {
        let empty = WeightedGraph::from_edges(0, std::iter::empty());
        assert!(distributed_components(&empty, 1, 2).is_empty());
        let edgeless = WeightedGraph::from_edges(5, std::iter::empty());
        assert!(distributed_components(&edgeless, 1, 2).is_empty());
    }

    #[test]
    fn rank_count_does_not_change_results() {
        let g = random_graph(30, 0.3, 99);
        let o = OrientedGraph::from_graph(&g);
        let r1 = distributed_survey(&o, 3, 1);
        let r4 = distributed_survey(&o, 3, 4);
        let r7 = distributed_survey(&o, 3, 7);
        assert_eq!(r1.triangles, r4.triangles);
        assert_eq!(r4.triangles, r7.triangles);
        assert_eq!(r1.total_triangles, r7.total_triangles);
    }
}
