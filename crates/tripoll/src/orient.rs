//! Degree-order edge orientation.
//!
//! Orienting every undirected edge from the endpoint that is *lower* in a
//! total degree order (`(degree, id)` lexicographic) to the higher one turns
//! the graph into a DAG in which every triangle appears exactly once — as a
//! wedge at its lowest-order vertex closed by one edge check. Out-degrees in
//! the oriented graph are bounded by O(√m) for any graph, which is what makes
//! intersection-based enumeration fast on skewed social graphs; this is the
//! standard trick TriPoll builds on.

use crate::graph::{GraphRef, WeightedGraph};

/// How edges are oriented. Degree order is the default and the right choice
/// for skewed graphs; id order exists as the ablation baseline (it degrades
/// to O(Δ²) wedge work at hubs, which the `orientation_ablation` bench
/// quantifies on a hub-heavy graph).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OrientationStrategy {
    /// `(degree, id)` lexicographic — bounds out-degrees by O(√m).
    #[default]
    DegreeOrder,
    /// Plain vertex-id order — simple, hub-hostile.
    IdOrder,
}

/// A degree-order-oriented view of a [`WeightedGraph`].
///
/// `out(u)` holds only neighbors above `u` in degree order, sorted by id, so
/// two out-lists can be intersected with a linear merge.
#[derive(Clone, Debug)]
pub struct OrientedGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u64>,
    /// Largest out-degree, folded into the counting pass at build time.
    max_out: u32,
}

impl OrientedGraph {
    /// Orient `g` by degree order.
    pub fn from_graph(g: &WeightedGraph) -> Self {
        Self::from_ref(g)
    }

    /// Orient `g` with an explicit strategy.
    pub fn with_strategy(g: &WeightedGraph, strategy: OrientationStrategy) -> Self {
        Self::with_strategy_ref(g, strategy)
    }

    /// Orient any borrowed [`GraphRef`] view by degree order. This is the
    /// zero-copy entry point: thresholding via
    /// [`ThresholdView`](crate::graph::ThresholdView) composes directly, so
    /// survey setup never materializes a filtered copy of the graph.
    pub fn from_ref<G: GraphRef>(g: &G) -> Self {
        Self::with_strategy_ref(g, OrientationStrategy::DegreeOrder)
    }

    /// Orient any borrowed [`GraphRef`] view with an explicit strategy.
    ///
    /// The view's adjacency is scanned exactly **once** (via `edge_iter`);
    /// the surviving canonical edges are staged in one flat buffer and
    /// everything after — degrees, counting, scatter — is O(|E'|) on that
    /// buffer. A sparse threshold view therefore costs a single filtered
    /// pass, where filter-then-rebuild pays the same pass *plus* a full CSR
    /// construction and copy.
    pub fn with_strategy_ref<G: GraphRef>(g: &G, strategy: OrientationStrategy) -> Self {
        let n = g.n_vertices();
        let edges: Vec<(u32, u32, u64)> = g.edge_iter().collect();
        match strategy {
            OrientationStrategy::DegreeOrder => {
                // Degrees in the *view* (post-filter), tallied from the
                // staged edges rather than per-vertex degree_of scans.
                let mut deg = vec![0u32; n as usize];
                for &(x, y, _) in &edges {
                    deg[x as usize] += 1;
                    deg[y as usize] += 1;
                }
                Self::build(n, &edges, move |u, v| {
                    (deg[u as usize], u) < (deg[v as usize], v)
                })
            }
            OrientationStrategy::IdOrder => Self::build(n, &edges, |u, v| u < v),
        }
    }

    /// `edges` must be canonical (`x < y`) and sorted by `(x, y)` — the
    /// [`GraphRef::edge_iter`] contract.
    fn build(n: u32, edges: &[(u32, u32, u64)], points_up: impl Fn(u32, u32) -> bool) -> Self {
        let n = n as usize;
        let mut offsets = vec![0usize; n + 1];
        for &(x, y, _) in edges {
            let src = if points_up(x, y) { x } else { y };
            offsets[src as usize + 1] += 1;
        }
        let mut max_out = 0u32;
        for k in 0..n {
            max_out = max_out.max(offsets[k + 1] as u32);
            offsets[k + 1] += offsets[k];
        }
        let total = offsets[n];
        let mut targets = vec![0u32; total];
        let mut weights = vec![0u64; total];
        let mut cursor = offsets.clone();
        for &(x, y, w) in edges {
            let (src, dst) = if points_up(x, y) { (x, y) } else { (y, x) };
            let c = cursor[src as usize];
            targets[c] = dst;
            weights[c] = w;
            cursor[src as usize] += 1;
        }
        // (x, y)-sorted canonical input scatters every out-list already
        // sorted: for a source u, all below-id targets arrive first (their
        // edges lead with the smaller id, ascending), then above-id targets
        // (u's own block, ascending second coordinate).
        debug_assert!((0..n).all(|u| {
            targets[offsets[u]..cursor[u]]
                .windows(2)
                .all(|p| p[0] < p[1])
        }));
        OrientedGraph {
            offsets,
            targets,
            weights,
            max_out,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of oriented (= undirected) edges.
    #[inline]
    pub fn m(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `u` in the orientation.
    #[inline]
    pub fn out_degree(&self, u: u32) -> u32 {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as u32
    }

    /// Out-neighbors of `u` (sorted by id) with edge weights.
    #[inline]
    pub fn out(&self, u: u32) -> (&[u32], &[u64]) {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Weight of oriented edge `(u, v)` if present.
    pub fn out_weight(&self, u: u32, v: u32) -> Option<u64> {
        let (nbrs, ws) = self.out(u);
        nbrs.binary_search(&v).ok().map(|i| ws[i])
    }

    /// Maximum out-degree — the quantity the √m bound constrains. Cached at
    /// build time, so per-run reporting (the bench harness logs it as the
    /// intersection-skew indicator) is O(1).
    #[inline]
    pub fn max_out_degree(&self) -> u32 {
        self.max_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_edge_oriented_exactly_once() {
        let g =
            WeightedGraph::from_edges(5, [(0, 1, 1), (0, 2, 2), (1, 2, 3), (2, 3, 4), (3, 4, 5)]);
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(o.m(), g.m());
        // each undirected edge appears in exactly one out-list
        for (u, v, w) in g.edges() {
            let fwd = o.out_weight(u, v);
            let bwd = o.out_weight(v, u);
            assert!(
                fwd.is_some() ^ bwd.is_some(),
                "edge ({u},{v}) oriented twice or never"
            );
            assert_eq!(fwd.or(bwd), Some(w));
        }
    }

    #[test]
    fn orientation_points_up_the_degree_order() {
        // star: center 0 has degree 4, leaves degree 1 → all edges leaf→center
        let g = WeightedGraph::from_edges(5, (1..5).map(|v| (0u32, v, 1u64)));
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(o.out_degree(0), 0);
        for v in 1..5 {
            assert_eq!(o.out_degree(v), 1);
            assert_eq!(o.out(v).0, &[0]);
        }
    }

    #[test]
    fn ties_break_by_vertex_id() {
        // single edge: equal degrees, lower id points to higher id
        let g = WeightedGraph::from_edges(2, [(1, 0, 9)]);
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(o.out_weight(0, 1), Some(9));
        assert_eq!(o.out_weight(1, 0), None);
    }

    #[test]
    fn out_lists_are_sorted() {
        let g = WeightedGraph::from_edges(
            6,
            [
                (0, 5, 1),
                (0, 3, 1),
                (0, 4, 1),
                (0, 1, 1),
                (1, 3, 1),
                (3, 4, 1),
            ],
        );
        let o = OrientedGraph::from_graph(&g);
        for u in 0..o.n() {
            let (nbrs, _) = o.out(u);
            assert!(
                nbrs.windows(2).all(|p| p[0] < p[1]),
                "out({u}) unsorted: {nbrs:?}"
            );
        }
    }

    #[test]
    fn max_out_degree_is_bounded_on_a_star() {
        // A hub with 1000 leaves: undirected max degree 1000, but oriented
        // max out-degree must be 1 (leaves point at the hub).
        let g = WeightedGraph::from_edges(1001, (1..=1000).map(|v| (0u32, v, 1u64)));
        assert_eq!(g.max_degree(), 1000);
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(o.max_out_degree(), 1);
    }

    #[test]
    fn id_order_strategy_counts_the_same_triangles() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let n = 60u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.15) {
                    edges.push((a, b, 1u64));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges);
        let deg = OrientedGraph::with_strategy(&g, OrientationStrategy::DegreeOrder);
        let id = OrientedGraph::with_strategy(&g, OrientationStrategy::IdOrder);
        assert_eq!(
            crate::enumerate::count_triangles(&deg),
            crate::enumerate::count_triangles(&id)
        );
        assert_eq!(deg.m(), id.m());
    }

    #[test]
    fn id_order_hurts_on_hubs() {
        // a low-id hub: id order gives it out-degree n-1; degree order gives 0
        let g = WeightedGraph::from_edges(500, (1..500).map(|v| (0u32, v, 1u64)));
        let id = OrientedGraph::with_strategy(&g, OrientationStrategy::IdOrder);
        assert_eq!(id.max_out_degree(), 499);
        let deg = OrientedGraph::with_strategy(&g, OrientationStrategy::DegreeOrder);
        assert_eq!(deg.max_out_degree(), 1);
    }

    #[test]
    fn orienting_a_threshold_view_matches_filter_then_orient() {
        use crate::graph::ThresholdView;
        let g =
            WeightedGraph::from_edges(5, [(0, 1, 1), (0, 2, 7), (1, 2, 3), (2, 3, 9), (3, 4, 2)]);
        for min in [1, 2, 3, 7, 10] {
            let via_view = OrientedGraph::from_ref(&ThresholdView::new(&g, min));
            let via_rebuild = OrientedGraph::from_graph(&g.filter_weight(min));
            assert_eq!(via_view.n(), via_rebuild.n(), "min={min}");
            assert_eq!(via_view.m(), via_rebuild.m(), "min={min}");
            for u in 0..via_view.n() {
                assert_eq!(via_view.out(u), via_rebuild.out(u), "u={u} min={min}");
            }
        }
    }

    #[test]
    fn empty_and_single_vertex() {
        let g = WeightedGraph::from_edges(1, std::iter::empty());
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(o.n(), 1);
        assert_eq!(o.m(), 0);
        assert_eq!(o.max_out_degree(), 0);
    }
}
