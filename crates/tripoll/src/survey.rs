//! Triangle surveys: thresholded collection with metadata, TriPoll-style.
//!
//! A *survey* streams every triangle past a set of predicates and accumulates
//! both the survivors and summary statistics. The two predicates the paper
//! uses are:
//!
//! * minimum edge weight `min{w'_xy, w'_xz, w'_yz} ≥ θ` (step 2's cutoff —
//!   25 for the anecdotal hunts, 10 for the hexbin figures);
//! * normalized CI coordination score `T(x,y,z) = 3·min{w'}/(P'_x+P'_y+P'_z)
//!   ≥ τ`, which needs per-vertex metadata (`P'` page counts) supplied
//!   alongside the graph.

use rayon::prelude::*;

use crate::enumerate::{par_triangles, Triangle};
use crate::orient::OrientedGraph;

/// Survey thresholds and options.
#[derive(Clone, Debug)]
pub struct SurveyConfig {
    /// Keep triangles with `min_weight() >= min_edge_weight`.
    pub min_edge_weight: u64,
    /// Keep triangles with `T(x,y,z) >= min_t_score` (requires `vertex_pages`
    /// to have been passed to [`survey`]). `0.0` disables the predicate.
    pub min_t_score: f64,
    /// If set, retain only the `k` triangles with the largest minimum edge
    /// weight (ties broken by vertex ids for determinism).
    pub top_k: Option<usize>,
}

impl Default for SurveyConfig {
    fn default() -> Self {
        SurveyConfig {
            min_edge_weight: 1,
            min_t_score: 0.0,
            top_k: None,
        }
    }
}

impl SurveyConfig {
    /// Survey with a minimum-edge-weight cutoff only.
    pub fn with_min_weight(min_edge_weight: u64) -> Self {
        SurveyConfig {
            min_edge_weight,
            ..Default::default()
        }
    }
}

/// A surviving triangle plus the survey-time metadata computed for it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurveyedTriangle {
    /// The triangle and its per-edge weights.
    pub triangle: Triangle,
    /// `min{w'}` — the paper's triangle statistic.
    pub min_weight: u64,
    /// `T(x,y,z)` if vertex page counts were provided, else `NaN`.
    pub t_score: f64,
}

/// Aggregate results of a survey.
#[derive(Clone, Debug, Default)]
pub struct SurveyReport {
    /// Triangles passing all predicates.
    pub triangles: Vec<SurveyedTriangle>,
    /// Total triangles examined (before thresholds).
    pub total_examined: u64,
    /// Largest minimum-edge-weight seen anywhere in the graph.
    pub max_min_weight: u64,
    /// Histogram of `log2(min_weight)` buckets over *all* triangles:
    /// `hist[i]` counts triangles with `min_weight in [2^i, 2^(i+1))`.
    pub min_weight_log_hist: Vec<u64>,
}

impl SurveyReport {
    /// Triangles that passed, as vertex triples.
    pub fn triplets(&self) -> Vec<[u32; 3]> {
        self.triangles
            .iter()
            .map(|s| s.triangle.vertices())
            .collect()
    }

    /// Number of surviving triangles.
    pub fn len(&self) -> usize {
        self.triangles.len()
    }

    /// Whether no triangle survived.
    pub fn is_empty(&self) -> bool {
        self.triangles.is_empty()
    }
}

/// `T(x,y,z) = 3·min{w'} / (P'_x + P'_y + P'_z)`, the paper's Eq. (7).
/// Returns 0 when all three `P'` are 0 (no projection pages — can only happen
/// with inconsistent metadata, but stays in range).
#[inline]
pub fn t_score(min_weight: u64, px: u64, py: u64, pz: u64) -> f64 {
    let denom = px + py + pz;
    if denom == 0 {
        return 0.0;
    }
    3.0 * min_weight as f64 / denom as f64
}

/// Run a survey over every triangle of `oriented`.
///
/// `vertex_pages`, when given, must map vertex id → `P'` (the number of pages
/// that contributed a projection edge at that vertex, paper Eq. (6)); it is
/// required if `config.min_t_score > 0`.
pub fn survey(
    oriented: &OrientedGraph,
    config: &SurveyConfig,
    vertex_pages: Option<&[u64]>,
) -> SurveyReport {
    let _stage = obs::span("survey");
    assert!(
        config.min_t_score <= 0.0 || vertex_pages.is_some(),
        "min_t_score requires vertex_pages metadata"
    );
    if let Some(vp) = vertex_pages {
        assert_eq!(
            vp.len(),
            oriented.n() as usize,
            "vertex_pages length mismatch"
        );
    }

    // Per-apex partial reports, merged associatively.
    #[derive(Default)]
    struct Partial {
        kept: Vec<SurveyedTriangle>,
        examined: u64,
        max_min: u64,
        hist: Vec<u64>,
    }
    let merge = |mut a: Partial, mut b: Partial| {
        a.kept.append(&mut b.kept);
        a.examined += b.examined;
        a.max_min = a.max_min.max(b.max_min);
        if a.hist.len() < b.hist.len() {
            std::mem::swap(&mut a.hist, &mut b.hist);
        }
        for (x, y) in a.hist.iter_mut().zip(b.hist) {
            *x += y;
        }
        a
    };

    let partial = (0..oriented.n())
        .into_par_iter()
        .fold(Partial::default, |mut acc, u| {
            crate::enumerate::for_each_apex_triangle(oriented, u, &mut |t: Triangle| {
                let mw = t.min_weight();
                acc.examined += 1;
                acc.max_min = acc.max_min.max(mw);
                let bucket = 64 - mw.max(1).leading_zeros() as usize - 1;
                if acc.hist.len() <= bucket {
                    acc.hist.resize(bucket + 1, 0);
                }
                acc.hist[bucket] += 1;
                if mw < config.min_edge_weight {
                    return;
                }
                let ts = match vertex_pages {
                    Some(vp) => t_score(mw, vp[t.a as usize], vp[t.b as usize], vp[t.c as usize]),
                    None => f64::NAN,
                };
                if config.min_t_score > 0.0 && ts < config.min_t_score {
                    return;
                }
                acc.kept.push(SurveyedTriangle {
                    triangle: t,
                    min_weight: mw,
                    t_score: ts,
                });
            });
            acc
        })
        .reduce(Partial::default, merge);

    let mut triangles = partial.kept;
    if let Some(k) = config.top_k {
        triangles.sort_unstable_by(|x, y| {
            y.min_weight
                .cmp(&x.min_weight)
                .then_with(|| x.triangle.vertices().cmp(&y.triangle.vertices()))
        });
        triangles.truncate(k);
    } else {
        triangles.sort_unstable_by_key(|s| s.triangle.vertices());
    }

    obs::counter("survey.triangles_examined").add(partial.examined);
    obs::counter("survey.triangles_kept").add(triangles.len() as u64);
    obs::record_stage_rss("survey");
    SurveyReport {
        triangles,
        total_examined: partial.examined,
        max_min_weight: partial.max_min,
        min_weight_log_hist: partial.hist,
    }
}

/// Convenience: the `k` triangles with the largest minimum edge weight.
pub fn top_k_by_min_weight(oriented: &OrientedGraph, k: usize) -> Vec<SurveyedTriangle> {
    survey(
        oriented,
        &SurveyConfig {
            min_edge_weight: 1,
            min_t_score: 0.0,
            top_k: Some(k),
        },
        None,
    )
    .triangles
}

/// Convenience: all triangles with `min_weight >= cutoff`, sorted by vertices.
pub fn triangles_above(oriented: &OrientedGraph, cutoff: u64) -> Vec<Triangle> {
    par_triangles(oriented, |t| (t.min_weight() >= cutoff).then_some(t))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::WeightedGraph;

    /// Two triangles: one heavy (min 10), one light (min 2), sharing vertex 2.
    fn two_triangle_graph() -> WeightedGraph {
        WeightedGraph::from_edges(
            5,
            [
                (0, 1, 10),
                (0, 2, 12),
                (1, 2, 15),
                (2, 3, 2),
                (2, 4, 3),
                (3, 4, 5),
            ],
        )
    }

    #[test]
    fn min_weight_cutoff_filters() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        let rep = survey(&o, &SurveyConfig::with_min_weight(5), None);
        assert_eq!(rep.total_examined, 2);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.triangles[0].triangle.vertices(), [0, 1, 2]);
        assert_eq!(rep.triangles[0].min_weight, 10);
        assert!(rep.triangles[0].t_score.is_nan());
        assert_eq!(rep.max_min_weight, 10);
    }

    #[test]
    fn t_score_matches_formula_and_range() {
        assert_eq!(t_score(5, 5, 5, 5), 1.0);
        assert_eq!(t_score(0, 5, 5, 5), 0.0);
        assert!((t_score(2, 4, 4, 4) - 0.5).abs() < 1e-12);
        assert_eq!(t_score(1, 0, 0, 0), 0.0);
    }

    #[test]
    fn t_score_threshold_uses_vertex_metadata() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        // P' such that heavy triangle scores 3*10/(12+12+12)=0.833,
        // light scores 3*2/(12+12+12)=0.167
        let pages = vec![12u64; 5];
        let rep = survey(
            &o,
            &SurveyConfig {
                min_edge_weight: 1,
                min_t_score: 0.5,
                top_k: None,
            },
            Some(&pages),
        );
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.triangles[0].triangle.vertices(), [0, 1, 2]);
        assert!((rep.triangles[0].t_score - 10.0 * 3.0 / 36.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires vertex_pages")]
    fn t_threshold_without_metadata_panics() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        survey(
            &o,
            &SurveyConfig {
                min_edge_weight: 1,
                min_t_score: 0.5,
                top_k: None,
            },
            None,
        );
    }

    #[test]
    fn top_k_orders_by_min_weight_desc() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        let top = top_k_by_min_weight(&o, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].min_weight, 10);
        let top2 = top_k_by_min_weight(&o, 10);
        assert_eq!(top2.len(), 2);
        assert!(top2[0].min_weight >= top2[1].min_weight);
    }

    #[test]
    fn log_histogram_buckets_by_power_of_two() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        let rep = survey(&o, &SurveyConfig::default(), None);
        // min weights are 10 (bucket 3: [8,16)) and 2 (bucket 1: [2,4))
        assert_eq!(rep.min_weight_log_hist.len(), 4);
        assert_eq!(rep.min_weight_log_hist[1], 1);
        assert_eq!(rep.min_weight_log_hist[3], 1);
        assert_eq!(rep.min_weight_log_hist.iter().sum::<u64>(), 2);
    }

    #[test]
    fn triangles_above_matches_survey() {
        let g = two_triangle_graph();
        let o = OrientedGraph::from_graph(&g);
        let ts = triangles_above(&o, 2);
        assert_eq!(ts.len(), 2);
        let ts = triangles_above(&o, 11);
        assert!(ts.is_empty());
    }

    #[test]
    fn empty_graph_survey_is_empty() {
        let g = WeightedGraph::from_edges(3, std::iter::empty());
        let o = OrientedGraph::from_graph(&g);
        let rep = survey(&o, &SurveyConfig::default(), None);
        assert!(rep.is_empty());
        assert_eq!(rep.total_examined, 0);
        assert_eq!(rep.max_min_weight, 0);
        assert!(rep.min_weight_log_hist.is_empty());
    }
}
