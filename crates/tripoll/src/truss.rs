//! k-truss decomposition — a principled "backbone" extraction for the common
//! interaction graph.
//!
//! The paper cites Neal (2014) on extracting the backbone of bipartite
//! projections and thresholds raw edge weights; a k-truss sharpens that: the
//! *k-truss* is the maximal subgraph in which every edge participates in at
//! least `k − 2` triangles. Coordinated groups — which are triangle-rich by
//! construction — survive high-k trusses while incidental co-occurrence
//! edges, however heavy, are peeled away. `trussness(e)` (the largest k whose
//! truss contains `e`) is computed for every edge by the standard
//! support-peeling algorithm.

use std::collections::HashMap;

use crate::graph::WeightedGraph;

/// Per-edge trussness: for each undirected edge `(u, v)` (with `u < v`), the
/// largest `k` such that the k-truss contains it. Edges in no triangle get
/// trussness 2.
pub fn edge_trussness(g: &WeightedGraph) -> HashMap<(u32, u32), u32> {
    // support = number of triangles through each edge
    let mut support: HashMap<(u32, u32), u32> = g.edges().map(|(u, v, _)| ((u, v), 0)).collect();
    let key = |a: u32, b: u32| (a.min(b), a.max(b));
    let oriented = crate::orient::OrientedGraph::from_graph(g);
    crate::enumerate::for_each_triangle(&oriented, |t| {
        *support.get_mut(&key(t.a, t.b)).expect("edge exists") += 1;
        *support.get_mut(&key(t.a, t.c)).expect("edge exists") += 1;
        *support.get_mut(&key(t.b, t.c)).expect("edge exists") += 1;
    });

    // adjacency sets for triangle queries during peeling
    let mut adj: Vec<std::collections::HashSet<u32>> =
        vec![std::collections::HashSet::new(); g.n() as usize];
    for (u, v, _) in g.edges() {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }

    // peel edges in order of current support (bucket queue)
    let mut trussness: HashMap<(u32, u32), u32> = HashMap::with_capacity(support.len());
    let mut remaining: Vec<(u32, u32)> = support.keys().copied().collect();
    let mut k = 2u32;
    while !remaining.is_empty() {
        // repeatedly remove edges whose support < k - 1 (they are not in the
        // (k+1)-truss); their trussness is k
        loop {
            let to_remove: Vec<(u32, u32)> = remaining
                .iter()
                .copied()
                .filter(|e| support[e] + 2 <= k)
                .collect();
            if to_remove.is_empty() {
                break;
            }
            for (u, v) in to_remove {
                trussness.insert((u, v), k);
                // removing (u,v) decrements the support of every edge pair
                // (u,w), (v,w) closing a triangle with it
                let (small, large) = if adj[u as usize].len() <= adj[v as usize].len() {
                    (u, v)
                } else {
                    (v, u)
                };
                let commons: Vec<u32> = adj[small as usize]
                    .iter()
                    .copied()
                    .filter(|w| adj[large as usize].contains(w))
                    .collect();
                for w in commons {
                    for e in [key(u, w), key(v, w)] {
                        if let Some(s) = support.get_mut(&e) {
                            if !trussness.contains_key(&e) && *s > 0 {
                                *s -= 1;
                            }
                        }
                    }
                }
                adj[u as usize].remove(&v);
                adj[v as usize].remove(&u);
                support.remove(&(u, v));
            }
            remaining.retain(|e| support.contains_key(e));
        }
        k += 1;
    }
    trussness
}

/// The maximum trussness over all edges (2 for a triangle-free graph, 0 for
/// an edgeless one).
pub fn max_trussness(g: &WeightedGraph) -> u32 {
    edge_trussness(g).values().copied().max().unwrap_or(0)
}

/// The k-truss as a subgraph: edges with trussness ≥ k, original weights.
pub fn k_truss(g: &WeightedGraph, k: u32) -> WeightedGraph {
    let t = edge_trussness(g);
    WeightedGraph::from_edges(
        g.n(),
        g.edges()
            .filter(|&(u, v, _)| t.get(&(u, v)).copied().unwrap_or(0) >= k),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique(n: u32) -> WeightedGraph {
        WeightedGraph::from_edges(
            n,
            (0..n).flat_map(move |i| ((i + 1)..n).map(move |j| (i, j, 1u64))),
        )
    }

    #[test]
    fn clique_trussness_is_n() {
        // every edge of K_n lies in n-2 triangles → trussness n
        for n in [3u32, 4, 5, 6] {
            let g = clique(n);
            let t = edge_trussness(&g);
            assert!(t.values().all(|&k| k == n), "K{n}: {t:?}");
            assert_eq!(max_trussness(&g), n);
        }
    }

    #[test]
    fn triangle_free_graph_has_trussness_two() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        let t = edge_trussness(&g);
        assert_eq!(t.len(), 4);
        assert!(t.values().all(|&k| k == 2));
    }

    #[test]
    fn pendant_edges_peel_before_the_core() {
        // K5 plus a pendant path: the path edges are 2-truss, the clique is 5
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j, 1));
            }
        }
        edges.push((4, 5, 1));
        edges.push((5, 6, 1));
        let g = WeightedGraph::from_edges(7, edges);
        let t = edge_trussness(&g);
        assert_eq!(t[&(4, 5)], 2);
        assert_eq!(t[&(5, 6)], 2);
        assert_eq!(t[&(0, 1)], 5);
        let core = k_truss(&g, 5);
        assert_eq!(core.m(), 10, "only the K5 survives");
        assert_eq!(core.edge_weight(4, 5), None);
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        // bowtie on an edge: shared edge has support 2, others 1 → all peel
        // at k=4? shared edge (1,2) is in 2 triangles; edges (0,1),(0,2) in 1.
        // 4-truss needs support ≥ 2 on *every* edge of the subgraph.
        let g =
            WeightedGraph::from_edges(4, [(0, 1, 1), (0, 2, 1), (1, 2, 1), (1, 3, 1), (2, 3, 1)]);
        let t = edge_trussness(&g);
        // all edges are in the 3-truss; none survive to 4 (peeling the
        // support-1 edges destroys both triangles)
        assert!(t.values().all(|&k| k == 3), "{t:?}");
        assert_eq!(k_truss(&g, 3).m(), 5);
        assert_eq!(k_truss(&g, 4).m(), 0);
    }

    #[test]
    fn truss_separates_coordination_from_heavy_noise() {
        // a 5-clique (the botnet) plus a very heavy star around vertex 5
        // (an AutoModerator-like hub: heavy edges, no triangles)
        let mut edges: Vec<(u32, u32, u64)> = Vec::new();
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                edges.push((i, j, 10));
            }
        }
        for leaf in 6..12u32 {
            edges.push((5, leaf, 1000)); // heavy but triangle-free
        }
        let g = WeightedGraph::from_edges(12, edges);
        let core = k_truss(&g, 4);
        assert_eq!(core.m(), 10, "the clique survives");
        assert_eq!(core.degree(5), 0, "the hub is peeled despite its weight");
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(3, std::iter::empty());
        assert!(edge_trussness(&g).is_empty());
        assert_eq!(max_trussness(&g), 0);
        assert_eq!(k_truss(&g, 3).m(), 0);
    }

    #[test]
    fn k_truss_nesting() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let n = 30u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.25) {
                    edges.push((a, b, rng.gen_range(1..10u64)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges);
        let kmax = max_trussness(&g);
        let mut prev = g.m();
        for k in 2..=kmax {
            let t = k_truss(&g, k);
            assert!(t.m() <= prev, "truss not nested at k={k}");
            prev = t.m();
        }
        assert!(k_truss(&g, kmax + 1).m() == 0);
    }
}
