//! Graph storage, re-exported from the shared [`coordination_graph`] layer.
//!
//! TriPoll used to own its CSR implementation; it now lives in
//! `crates/graph` so projection, streaming, and analysis share one
//! representation with zero-copy handoffs. `WeightedGraph` is the historical
//! tripoll name for [`coordination_graph::CsrGraph`] and remains the name the
//! survey API documents; both resolve to the same type.

/// TriPoll's historical name for the shared CSR graph.
pub use coordination_graph::CsrGraph as WeightedGraph;

pub use coordination_graph::{components, DisjointSets, GraphRef, SubsetView, ThresholdView};
