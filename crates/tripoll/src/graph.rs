//! Compressed-sparse-row storage for undirected weighted graphs.
//!
//! Vertices are dense `u32` ids (`0..n`); edge weights are `u64` counts (the
//! common-interaction weights `w'` are page counts, so integers are exact).
//! Adjacency lists are sorted by neighbor id, which the triangle enumerator's
//! sorted-intersection step depends on.

/// An undirected weighted graph in CSR form.
///
/// Both directions of every edge are stored, so `degree(u)` is the true
/// undirected degree and `neighbors(u)` is complete.
#[derive(Clone, Debug)]
pub struct WeightedGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u64>,
}

impl WeightedGraph {
    /// Build from an undirected edge list. Each `(u, v, w)` is one undirected
    /// edge; duplicates (in either orientation) have their weights summed.
    /// Self-loops are discarded — the projection never produces them and
    /// triangles cannot use them.
    ///
    /// `n` is the vertex-count; every endpoint must be `< n`.
    pub fn from_edges(n: u32, edges: impl IntoIterator<Item = (u32, u32, u64)>) -> Self {
        // Collect both directions, then sort and merge duplicates.
        let mut dir: Vec<(u32, u32, u64)> = Vec::new();
        for (u, v, w) in edges {
            assert!(
                u < n && v < n,
                "edge endpoint out of range ({u},{v}) for n={n}"
            );
            if u == v {
                continue;
            }
            dir.push((u, v, w));
            dir.push((v, u, w));
        }
        dir.sort_unstable_by_key(|e| (e.0, e.1));

        let mut offsets = vec![0usize; n as usize + 1];
        let mut targets = Vec::with_capacity(dir.len());
        let mut weights = Vec::with_capacity(dir.len());
        let mut i = 0;
        while i < dir.len() {
            let (u, v, mut w) = dir[i];
            let mut j = i + 1;
            while j < dir.len() && dir[j].0 == u && dir[j].1 == v {
                w += dir[j].2;
                j += 1;
            }
            targets.push(v);
            weights.push(w);
            offsets[u as usize + 1] += 1;
            i = j;
        }
        for k in 0..n as usize {
            offsets[k + 1] += offsets[k];
        }
        WeightedGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> u64 {
        (self.targets.len() / 2) as u64
    }

    /// Undirected degree of `u`.
    #[inline]
    pub fn degree(&self, u: u32) -> u32 {
        (self.offsets[u as usize + 1] - self.offsets[u as usize]) as u32
    }

    /// `u`'s neighbors (sorted ascending) and the matching edge weights.
    #[inline]
    pub fn neighbors(&self, u: u32) -> (&[u32], &[u64]) {
        let lo = self.offsets[u as usize];
        let hi = self.offsets[u as usize + 1];
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }

    /// Weight of edge `(u, v)`, or `None` if absent.
    pub fn edge_weight(&self, u: u32, v: u32) -> Option<u64> {
        let (nbrs, ws) = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| ws[i])
    }

    /// Iterate each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.n()).flat_map(move |u| {
            let (nbrs, ws) = self.neighbors(u);
            nbrs.iter()
                .zip(ws.iter())
                .filter(move |(&v, _)| u < v)
                .map(move |(&v, &w)| (u, v, w))
        })
    }

    /// Retain only edges with `weight >= min_weight`; vertex set unchanged.
    /// This is the paper's pre-survey edge threshold (e.g. weight ≥ 5 before
    /// enumerating triangles in the 2016 one-hour projection).
    pub fn filter_weight(&self, min_weight: u64) -> WeightedGraph {
        WeightedGraph::from_edges(self.n(), self.edges().filter(|&(_, _, w)| w >= min_weight))
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum::<u64>() / 2
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.n()).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Connected components over edges with `weight >= min_weight`; returns
    /// one sorted vertex list per component with ≥ 2 vertices, largest first.
    pub fn components(&self, min_weight: u64) -> Vec<Vec<u32>> {
        let mut dsu = DisjointSets::new(self.n() as usize);
        for (u, v, w) in self.edges() {
            if w >= min_weight {
                dsu.union(u as usize, v as usize);
            }
        }
        let mut groups: std::collections::HashMap<usize, Vec<u32>> =
            std::collections::HashMap::new();
        for u in 0..self.n() {
            groups.entry(dsu.find(u as usize)).or_default().push(u);
        }
        let mut comps: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        // vertex lists are ascending (built in vertex order); tie-break equal
        // sizes by content for fully deterministic output
        comps.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a.cmp(b)));
        comps
    }
}

/// Union-find with path halving and union by size.
pub struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merge the sets of `a` and `b`; returns true if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> u32 {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> WeightedGraph {
        WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3)])
    }

    #[test]
    fn csr_basic_shape() {
        let g = path3();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_are_sorted_with_weights() {
        let g = WeightedGraph::from_edges(4, [(2, 0, 7), (2, 3, 1), (2, 1, 9)]);
        let (nbrs, ws) = g.neighbors(2);
        assert_eq!(nbrs, &[0, 1, 3]);
        assert_eq!(ws, &[7, 9, 1]);
    }

    #[test]
    fn duplicate_edges_sum_weights_in_both_orientations() {
        let g = WeightedGraph::from_edges(2, [(0, 1, 2), (1, 0, 3), (0, 1, 5)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(10));
        assert_eq!(g.edge_weight(1, 0), Some(10));
    }

    #[test]
    fn self_loops_are_dropped() {
        let g = WeightedGraph::from_edges(2, [(0, 0, 9), (0, 1, 1)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.edge_weight(0, 0), None);
    }

    #[test]
    fn edge_weight_absent_edge_is_none() {
        let g = path3();
        assert_eq!(g.edge_weight(0, 2), None);
    }

    #[test]
    fn edges_iterates_each_edge_once_canonically() {
        let g = WeightedGraph::from_edges(4, [(3, 1, 4), (0, 2, 5)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 2, 5), (1, 3, 4)]);
    }

    #[test]
    fn filter_weight_drops_light_edges_only() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 5), (2, 3, 10)]);
        let f = g.filter_weight(5);
        assert_eq!(f.n(), 4);
        assert_eq!(f.m(), 2);
        assert_eq!(f.edge_weight(0, 1), None);
        assert_eq!(f.edge_weight(1, 2), Some(5));
    }

    #[test]
    fn total_weight_counts_each_edge_once() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 2), (1, 2, 3), (0, 2, 4)]);
        assert_eq!(g.total_weight(), 9);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(0, std::iter::empty());
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.components(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_endpoint_panics() {
        WeightedGraph::from_edges(2, [(0, 2, 1)]);
    }

    #[test]
    fn components_respect_threshold() {
        // two triangles joined by a light bridge
        let g = WeightedGraph::from_edges(
            6,
            [
                (0, 1, 10),
                (1, 2, 10),
                (0, 2, 10),
                (2, 3, 1), // bridge below threshold
                (3, 4, 10),
                (4, 5, 10),
                (3, 5, 10),
            ],
        );
        let comps = g.components(5);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 3);
        let all: std::collections::HashSet<u32> = comps.iter().flatten().copied().collect();
        assert_eq!(all.len(), 6);

        let merged = g.components(1);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].len(), 6);
    }

    #[test]
    fn disjoint_sets_union_find() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.union(2, 3));
        assert_ne!(d.find(0), d.find(2));
        assert!(d.union(1, 3));
        assert_eq!(d.find(0), d.find(2));
        assert_eq!(d.set_size(3), 4);
        assert_eq!(d.set_size(4), 1);
    }
}
