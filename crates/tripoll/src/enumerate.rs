//! Triangle enumeration by sorted-adjacency intersection.
//!
//! With the graph oriented by degree order, every triangle `{a, b, c}` appears
//! exactly once: at its lowest-order vertex `u`, as a pair `(v, w)` present in
//! both `out(u)` and such that `w ∈ out(v)`. Enumeration therefore reduces to
//! intersecting sorted out-lists through the shared adaptive kernel
//! ([`coordination_graph::intersect`]): `O(min + log·short)` per wedge when
//! the two out-lists are skewed, `O(|out(u)| + |out(v)|)` linear merge when
//! they are comparable — near-linear in the triangle count on
//! social-network-like degree distributions either way.
//!
//! The parallel driver partitions the *wedge apex* vertices over rayon tasks;
//! out-lists are read-only, so the map step is embarrassingly parallel.

use rayon::prelude::*;

use crate::graph::WeightedGraph;
use crate::orient::OrientedGraph;

/// One triangle with its three vertices in ascending id order and the weight
/// of each edge. This is the "metadata" record a TriPoll survey callback sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Triangle {
    /// Lowest vertex id.
    pub a: u32,
    /// Middle vertex id.
    pub b: u32,
    /// Highest vertex id.
    pub c: u32,
    /// Weight of edge (a, b).
    pub w_ab: u64,
    /// Weight of edge (a, c).
    pub w_ac: u64,
    /// Weight of edge (b, c).
    pub w_bc: u64,
}

impl Triangle {
    /// Canonicalize from arbitrary vertex order. `w_xy` etc. must match the
    /// given vertex labels.
    pub fn new(x: u32, y: u32, z: u32, w_xy: u64, w_xz: u64, w_yz: u64) -> Self {
        let mut vs = [(x, 0usize), (y, 1), (z, 2)];
        vs.sort_unstable_by_key(|p| p.0);
        let [(a, ia), (b, ib), (c, _)] = vs;
        assert!(a != b && b != c, "triangle vertices must be distinct");
        // weight lookup by the pair of *original* slots
        let w = |s0: usize, s1: usize| match (s0.min(s1), s0.max(s1)) {
            (0, 1) => w_xy,
            (0, 2) => w_xz,
            (1, 2) => w_yz,
            _ => unreachable!(),
        };
        let ic = 3 - ia - ib;
        Triangle {
            a,
            b,
            c,
            w_ab: w(ia, ib),
            w_ac: w(ia, ic),
            w_bc: w(ib, ic),
        }
    }

    /// Minimum of the three edge weights — the paper's primary triangle
    /// statistic (`min{w'_xy, w'_xz, w'_yz}`).
    #[inline]
    pub fn min_weight(&self) -> u64 {
        self.w_ab.min(self.w_ac).min(self.w_bc)
    }

    /// Maximum of the three edge weights.
    #[inline]
    pub fn max_weight(&self) -> u64 {
        self.w_ab.max(self.w_ac).max(self.w_bc)
    }

    /// The vertices as a sorted array.
    #[inline]
    pub fn vertices(&self) -> [u32; 3] {
        [self.a, self.b, self.c]
    }

    /// The three edge weights ordered as `(w_ab, w_ac, w_bc)`.
    #[inline]
    pub fn edge_weights(&self) -> [u64; 3] {
        [self.w_ab, self.w_ac, self.w_bc]
    }
}

/// Stream every triangle of `oriented` through `f`, single-threaded.
pub fn for_each_triangle<F>(oriented: &OrientedGraph, mut f: F)
where
    F: FnMut(Triangle),
{
    for u in 0..oriented.n() {
        wedge_close(oriented, u, &mut f);
    }
}

/// Stream every triangle whose wedge apex (lowest degree-order vertex) is `u`.
/// The unit of parallel work: apexes partition the triangle set.
pub fn for_each_apex_triangle<F: FnMut(Triangle)>(oriented: &OrientedGraph, u: u32, f: &mut F) {
    wedge_close(oriented, u, f)
}

/// All triangles whose wedge apex (lowest degree-order vertex) is `u`.
///
/// Intersects the *whole* of `out(u)` with `out(v)` for every `v ∈ out(u)` —
/// the third vertex can sit anywhere in `out(u)`, not only past `v`, because
/// degree order ≠ id order. The intersection runs through the shared adaptive
/// kernel: linear merge when the two out-lists are comparable, galloping from
/// the shorter side when their lengths are skewed (id-order orientation and
/// hub-heavy graphs produce exactly that skew). `v` itself never matches —
/// `v ∉ out(v)` since the orientation has no self-loops.
#[inline]
fn wedge_close<F: FnMut(Triangle)>(oriented: &OrientedGraph, u: u32, f: &mut F) {
    let (u_nbrs, u_ws) = oriented.out(u);
    for (&v, &w_uv) in u_nbrs.iter().zip(u_ws) {
        let (v_nbrs, v_ws) = oriented.out(v);
        coordination_graph::intersect_indices(u_nbrs, v_nbrs, &mut |ai, bi| {
            // triangle u–v–x with x = u_nbrs[ai]: w_uv, w_ux, w_vx
            f(Triangle::new(u, v, u_nbrs[ai], w_uv, u_ws[ai], v_ws[bi]));
        });
    }
}

/// Parallel map over all triangles: `map` runs on rayon workers and its `Some`
/// results are collected (order unspecified).
pub fn par_triangles<T, F>(oriented: &OrientedGraph, map: F) -> Vec<T>
where
    T: Send,
    F: Fn(Triangle) -> Option<T> + Sync,
{
    (0..oriented.n())
        .into_par_iter()
        .fold(Vec::new, |mut acc, u| {
            wedge_close(oriented, u, &mut |t| {
                if let Some(x) = map(t) {
                    acc.push(x);
                }
            });
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        })
}

/// Count triangles, in parallel.
pub fn count_triangles(oriented: &OrientedGraph) -> u64 {
    (0..oriented.n())
        .into_par_iter()
        .map(|u| {
            let mut n = 0u64;
            wedge_close(oriented, u, &mut |_| n += 1);
            n
        })
        .sum()
}

/// Reference implementation: brute-force O(n³) triangle enumeration straight
/// off the undirected graph. For tests and tiny graphs only.
pub fn brute_force_triangles(g: &WeightedGraph) -> Vec<Triangle> {
    let mut out = Vec::new();
    let n = g.n();
    for a in 0..n {
        for b in (a + 1)..n {
            let Some(w_ab) = g.edge_weight(a, b) else {
                continue;
            };
            for c in (b + 1)..n {
                let (Some(w_ac), Some(w_bc)) = (g.edge_weight(a, c), g.edge_weight(b, c)) else {
                    continue;
                };
                out.push(Triangle {
                    a,
                    b,
                    c,
                    w_ab,
                    w_ac,
                    w_bc,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn triangles_of(g: &WeightedGraph) -> Vec<Triangle> {
        let o = OrientedGraph::from_graph(g);
        let mut out = Vec::new();
        for_each_triangle(&o, |t| out.push(t));
        out.sort_unstable_by_key(|t| (t.a, t.b, t.c));
        out
    }

    #[test]
    fn single_triangle_with_weights() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 5), (1, 2, 7), (0, 2, 3)]);
        let ts = triangles_of(&g);
        assert_eq!(
            ts,
            vec![Triangle {
                a: 0,
                b: 1,
                c: 2,
                w_ab: 5,
                w_ac: 3,
                w_bc: 7
            }]
        );
        assert_eq!(ts[0].min_weight(), 3);
        assert_eq!(ts[0].max_weight(), 7);
    }

    #[test]
    fn square_has_no_triangle() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        assert!(triangles_of(&g).is_empty());
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = WeightedGraph::from_edges(
            4,
            [
                (0, 1, 1),
                (0, 2, 1),
                (0, 3, 1),
                (1, 2, 1),
                (1, 3, 1),
                (2, 3, 1),
            ],
        );
        let ts = triangles_of(&g);
        assert_eq!(ts.len(), 4);
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(count_triangles(&o), 4);
    }

    #[test]
    fn clique_triangle_count_is_binomial() {
        let k = 10u32;
        let edges = (0..k).flat_map(|i| ((i + 1)..k).map(move |j| (i, j, 1u64)));
        let g = WeightedGraph::from_edges(k, edges);
        let o = OrientedGraph::from_graph(&g);
        assert_eq!(count_triangles(&o), (10 * 9 * 8) / 6);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for trial in 0..30 {
            let n = rng.gen_range(4..30u32);
            let p = rng.gen_range(0.05..0.5);
            let mut edges = Vec::new();
            for a in 0..n {
                for b in (a + 1)..n {
                    if rng.gen_bool(p) {
                        edges.push((a, b, rng.gen_range(1..100u64)));
                    }
                }
            }
            let g = WeightedGraph::from_edges(n, edges);
            let fast: HashSet<Triangle> = triangles_of(&g).into_iter().collect();
            let brute: HashSet<Triangle> = brute_force_triangles(&g).into_iter().collect();
            assert_eq!(fast, brute, "mismatch on trial {trial} (n={n}, p={p})");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let n = 200u32;
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if rng.gen_bool(0.05) {
                    edges.push((a, b, rng.gen_range(1..50u64)));
                }
            }
        }
        let g = WeightedGraph::from_edges(n, edges);
        let o = OrientedGraph::from_graph(&g);
        let mut seq = Vec::new();
        for_each_triangle(&o, |t| seq.push(t));
        let mut par = par_triangles(&o, Some);
        seq.sort_unstable_by_key(|t| (t.a, t.b, t.c));
        par.sort_unstable_by_key(|t| (t.a, t.b, t.c));
        assert_eq!(seq, par);
        assert_eq!(count_triangles(&o), seq.len() as u64);
    }

    #[test]
    fn par_map_filters() {
        let g = WeightedGraph::from_edges(
            4,
            [
                (0, 1, 10),
                (0, 2, 10),
                (1, 2, 10),
                (1, 3, 1),
                (2, 3, 1),
                (0, 3, 1),
            ],
        );
        let o = OrientedGraph::from_graph(&g);
        let heavy = par_triangles(&o, |t| (t.min_weight() >= 10).then_some(t.vertices()));
        assert_eq!(heavy, vec![[0, 1, 2]]);
    }

    #[test]
    fn triangle_new_canonicalizes_any_vertex_order() {
        // triangle vertices 5, 2, 9 with weights w_52=1, w_59=2, w_29=3
        let t = Triangle::new(5, 2, 9, 1, 2, 3);
        assert_eq!(t.vertices(), [2, 5, 9]);
        assert_eq!(t.w_ab, 1); // (2,5)
        assert_eq!(t.w_ac, 3); // (2,9)
        assert_eq!(t.w_bc, 2); // (5,9)

        // all six permutations agree
        let perms = [
            Triangle::new(2, 5, 9, 1, 3, 2),
            Triangle::new(2, 9, 5, 3, 1, 2),
            Triangle::new(5, 2, 9, 1, 2, 3),
            Triangle::new(5, 9, 2, 2, 1, 3),
            Triangle::new(9, 2, 5, 3, 2, 1),
            Triangle::new(9, 5, 2, 2, 3, 1),
        ];
        for p in perms {
            assert_eq!(p, t);
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn degenerate_triangle_panics() {
        Triangle::new(1, 1, 2, 0, 0, 0);
    }
}
