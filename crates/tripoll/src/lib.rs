//! # tripoll — triangle surveying with metadata on weighted graphs
//!
//! A single-node stand-in for [TriPoll (SC '21)](https://doi.org/10.1145/3458817.3476200),
//! the distributed triangle-survey system the paper uses for step 2 of its
//! pipeline ("querying high edge weight triangles in the common interaction
//! graph"). The algorithmic core is the same one TriPoll reports:
//!
//! 1. build a compressed sparse row (CSR) representation of the undirected
//!    weighted graph ([`graph::WeightedGraph`]);
//! 2. orient every edge from lower to higher *degree order* — a total order on
//!    vertices by `(degree, id)` — so each triangle is discovered exactly once
//!    ([`orient::OrientedGraph`]);
//! 3. enumerate triangles by sorted-adjacency intersection, invoking a
//!    user callback with full per-edge metadata ([`enumerate`]);
//! 4. apply survey predicates (minimum edge weight, normalized coordination
//!    score) and collect summaries ([`survey`]).
//!
//! Both a [rayon](https://docs.rs/rayon) shared-memory driver and a
//! message-based [`distributed`] driver over the [`ygm`] runtime are provided;
//! the latter preserves the push-style communication structure of real TriPoll.
//!
//! ## Example
//!
//! ```
//! use tripoll::{OrientedGraph, SurveyConfig, WeightedGraph};
//!
//! // a heavy triangle hanging off a light one
//! let g = WeightedGraph::from_edges(
//!     4,
//!     [(0, 1, 30), (0, 2, 28), (1, 2, 26), (2, 3, 2), (1, 3, 3)],
//! );
//! let oriented = OrientedGraph::from_graph(&g);
//! let report = tripoll::survey::survey(&oriented, &SurveyConfig::with_min_weight(25), None);
//! assert_eq!(report.total_examined, 2);
//! assert_eq!(report.len(), 1);
//! assert_eq!(report.triangles[0].triangle.vertices(), [0, 1, 2]);
//! assert_eq!(report.triangles[0].min_weight, 26);
//! ```

pub mod clique;
pub mod distributed;
pub mod enumerate;
pub mod graph;
pub mod orient;
pub mod survey;
pub mod truss;

pub use distributed::{load_oriented, survey_stage, DistAdjacency};
pub use enumerate::Triangle;
pub use graph::{GraphRef, SubsetView, ThresholdView, WeightedGraph};
pub use orient::OrientedGraph;
pub use survey::{SurveyConfig, SurveyReport, SurveyedTriangle};
